//! The binary rewriting pass: plan (analysis + policy generation) and
//! install (relayout + authenticated-call insertion + MAC computation).

use std::collections::{BTreeSet, HashMap};

use asc_analysis::ir::{IrInstr, IrItem, Unit};
use asc_analysis::ProgramAnalysis;
use asc_core::{ArgPolicy, EncodedArg, EncodedCall, ProgramPolicy, SyscallPolicy};
use asc_isa::{Instruction, Reg, INSTR_LEN};
use asc_object::{sections, Binary, Section, SectionFlags};
use asc_trace::{Event, EventKind, Severity, SpanId, TraceSink};

use crate::ascdata::AscBuilder;
use crate::classify::{classify_site, CoverageStats, PrecisionStats};
use crate::metapolicy::{PolicyTemplate, TemplateHole};
use crate::{InstallError, InstallReport, Installer};

const PAGE: u32 = 0x1000;

/// Installer-pass span ids (the installer runs outside the simulated
/// machine, so passes are identified positionally rather than by clock).
const SPAN_ANALYSIS: u64 = 0;
const SPAN_CLASSIFICATION: u64 = 1;
const SPAN_REWRITE: u64 = 2;

/// Emits one pass-completion event (no-op when the sink is disabled).
fn emit_pass(sink: &mut dyn TraceSink, span: u64, pass: &str, counters: Vec<(String, u64)>) {
    if !sink.enabled() {
        return;
    }
    sink.record(Event {
        span: SpanId(span),
        at_cycles: 0,
        severity: Severity::Info,
        kind: EventKind::InstallerPass {
            pass: pass.to_string(),
            counters,
        },
    });
}

/// Everything decided about one syscall site before rewriting.
#[derive(Clone, Debug)]
pub(crate) struct SitePlan {
    /// Item index in the post-inlining unit.
    item_index: usize,
    nr: u16,
    args: Vec<ArgPolicy>,
    block: u32,
    preds: BTreeSet<u32>,
}

/// The result of the planning phase.
pub(crate) struct Plan {
    pub unit: Unit,
    pub sites: Vec<SitePlan>,
    pub policy: ProgramPolicy,
    pub stats: CoverageStats,
    pub precision: PrecisionStats,
    pub warnings: Vec<String>,
    pub templates: Vec<PolicyTemplate>,
    pub inlined: Vec<(String, usize)>,
}

/// Runs analysis and policy generation (no rewriting). The returned
/// policy is keyed by *input* call-site addresses.
pub(crate) fn plan(
    installer: &Installer,
    binary: &Binary,
    program: &str,
    sink: &mut dyn TraceSink,
) -> Result<Plan, InstallError> {
    let opts = installer.options();
    let unit = Unit::lift(binary).map_err(|e| InstallError::Lift(e.to_string()))?;
    let analysis = ProgramAnalysis::run(unit);
    let mut warnings = analysis.warnings.clone();
    let inlined = analysis.inlined_stubs.clone();
    emit_pass(
        sink,
        SPAN_ANALYSIS,
        "analysis",
        vec![
            (
                "syscall_sites".to_string(),
                analysis.syscall_sites().len() as u64,
            ),
            ("inlined_stubs".to_string(), inlined.len() as u64),
            ("warnings".to_string(), warnings.len() as u64),
        ],
    );

    let mut policy = ProgramPolicy::new(program, opts.personality.name());
    policy.undisassembled_regions = warnings
        .iter()
        .filter(|w| w.contains("could not disassemble"))
        .count();
    let mut stats = CoverageStats::default();
    let mut precision = PrecisionStats {
        discovered: analysis.syscall_sites().len(),
        undisassembled_regions: policy.undisassembled_regions,
        ..PrecisionStats::default()
    };
    let mut templates = Vec::new();
    let mut sites = Vec::new();
    let mut distinct = BTreeSet::new();

    for site in analysis.syscall_sites() {
        // Inlined syscall instructions carry no original address of their
        // own; attribute them to the nearest preceding original address
        // (the inlined call site), which also keeps policy keys unique.
        let orig_addr = (0..=site.item_index)
            .rev()
            .find_map(|i| match &analysis.unit().items[i] {
                IrItem::Instr(instr) => instr.orig_addr,
                IrItem::Raw { orig_addr, .. } => Some(*orig_addr),
            });
        let Some((nr, mut args, spec)) = classify_site(
            binary,
            opts.personality,
            site,
            opts.capability_tracking,
            &mut stats,
        ) else {
            precision.unknown_nr += 1;
            warnings.push(format!(
                "syscall at {:#x}: number not statically determined; \
                 call left unauthenticated (will be blocked at runtime)",
                orig_addr.unwrap_or(0)
            ));
            continue;
        };
        distinct.insert(nr);

        // Metapolicy: apply fills, record remaining holes.
        if let Some(mp) = &opts.metapolicy {
            if let Some(id) = opts.personality.id(nr) {
                let required = mp.required_for(id);
                let mut holes = Vec::new();
                for i in 0..spec.nargs as usize {
                    if required & (1 << i) != 0 && !args[i].is_constrained() {
                        if let Some(fill) = mp.fill_for(spec.name, i) {
                            args[i] = fill.clone();
                            if matches!(
                                fill,
                                ArgPolicy::StringLit(_)
                                    | ArgPolicy::Immediate(_)
                                    | ArgPolicy::ImmediateAddr(_)
                            ) {
                                stats.auth += 1;
                            }
                        } else {
                            holes.push(TemplateHole { arg: i });
                        }
                    }
                }
                if !holes.is_empty() {
                    warnings.push(format!(
                        "metapolicy: `{}` at {:#x} needs hand-specified arguments {:?}",
                        spec.name,
                        orig_addr.unwrap_or(0),
                        holes.iter().map(|h| h.arg).collect::<Vec<_>>()
                    ));
                    templates.push(PolicyTemplate {
                        call_site: orig_addr.unwrap_or(0),
                        syscall: spec.name.to_string(),
                        holes,
                    });
                }
            }
        }

        // Pattern policies: the installer can generate the runtime
        // hint-producing code itself for `prefix*` patterns (the common
        // temp-file case). Other pattern shapes would need richer
        // generated matchers; downgrade those with a warning.
        for (i, a) in args.iter_mut().enumerate() {
            if let ArgPolicy::Pattern(p) = a {
                if prefix_star(p).is_none() {
                    warnings.push(format!(
                        "pattern `{p}` on `{}` arg {i} is not of the supported \
                         `prefix*` form; left unconstrained in the rewritten binary",
                        spec.name
                    ));
                    *a = ArgPolicy::Any;
                }
            }
        }

        precision.rewritten += 1;
        precision.pred_sites += 1;
        precision.pred_entries += site.predecessors.len();
        for i in 0..spec.nargs as usize {
            if spec.out_mask & (1 << i) != 0 {
                continue;
            }
            precision.input_args += 1;
            if matches!(args[i], ArgPolicy::Any) {
                precision.unknown_args += 1;
            }
        }

        let mut sp = SyscallPolicy::new(nr, orig_addr.unwrap_or(0), site.block);
        sp.args = args.clone();
        if opts.control_flow {
            sp.predecessors = Some(site.predecessors.iter().copied().collect());
        }
        sp.returns_capability = opts.capability_tracking && spec.returns_fd;
        sp.revokes_capability = opts.capability_tracking && spec.closes_fd;
        policy.insert(sp);

        sites.push(SitePlan {
            item_index: site.item_index,
            nr,
            args,
            block: site.block,
            preds: site.predecessors.iter().copied().collect(),
        });
    }
    stats.calls = distinct.len();
    policy.warnings = warnings.clone();
    emit_pass(
        sink,
        SPAN_CLASSIFICATION,
        "classification",
        vec![
            ("sites".to_string(), stats.sites as u64),
            ("calls".to_string(), stats.calls as u64),
            ("args".to_string(), stats.args as u64),
            ("out_params".to_string(), stats.out_params as u64),
            ("auth".to_string(), stats.auth as u64),
            ("multi_value".to_string(), stats.multi_value as u64),
            ("fds".to_string(), stats.fds as u64),
            ("templates".to_string(), templates.len() as u64),
        ],
    );

    Ok(Plan {
        unit: analysis.into_unit(),
        sites,
        policy,
        stats,
        precision,
        warnings,
        templates,
        inlined,
    })
}

/// If `pattern` has the supported `prefix*` shape (a literal followed by
/// exactly one trailing `*`), returns the prefix.
fn prefix_star(pattern: &str) -> Option<&str> {
    let prefix = pattern.strip_suffix('*')?;
    (!prefix.contains(['*', '{', '}'])).then_some(prefix)
}

/// Runtime block id: program id folded into the high bits when the
/// Frankenstein countermeasure is enabled. Block 0 (program start) stays 0
/// so the initial policy state is program-independent.
fn runtime_block(installer: &Installer, block: u32) -> u32 {
    let opts = installer.options();
    if opts.unique_block_ids && block != 0 {
        ((opts.program_id as u32) << 16) | (block & 0xffff)
    } else {
        block
    }
}

/// Full installation.
pub(crate) fn install(
    installer: &Installer,
    binary: &Binary,
    program: &str,
    sink: &mut dyn TraceSink,
) -> Result<(Binary, InstallReport), InstallError> {
    let opts = installer.options().clone();
    let key = installer.key();
    let plan = plan(installer, binary, program, sink)?;
    let Plan {
        unit,
        sites,
        stats,
        precision,
        warnings,
        templates,
        inlined,
        ..
    } = plan;

    // --- 1. Sizes and layout. ---
    // Per site: one MOVI per string-constant argument + the five
    // authenticated-call argument loads.
    let per_site_inserts: Vec<usize> = sites
        .iter()
        .map(|s| {
            let strings = s
                .args
                .iter()
                .filter(|a| matches!(a, ArgPolicy::StringLit(_)))
                .count();
            let patterns = s
                .args
                .iter()
                .filter(|a| matches!(a, ArgPolicy::Pattern(_)))
                .count();
            // 10 instructions of generated hint code per pattern argument
            // plus one extras-pointer load when any pattern exists.
            5 + strings + patterns * 10 + usize::from(patterns > 0)
        })
        .collect();
    let total_inserts: usize = per_site_inserts.iter().sum();
    let old_text_len: usize = unit
        .items
        .iter()
        .map(|it| match it {
            IrItem::Instr(_) => INSTR_LEN,
            IrItem::Raw { bytes, .. } => bytes.len(),
        })
        .sum();
    let new_text_len = old_text_len + total_inserts * INSTR_LEN;

    let text_base = unit.text_addr();
    let mut next = align_up(text_base + new_text_len as u32);
    // New addresses for the non-text sections, in their original order.
    let mut section_delta: Vec<(String, u32, u32, i64)> = Vec::new(); // (name, old_addr, old_size, delta)
    for s in binary.sections() {
        if s.name == sections::TEXT {
            continue;
        }
        section_delta.push((
            s.name.clone(),
            s.addr,
            s.mem_size,
            next as i64 - s.addr as i64,
        ));
        next = align_up(next + s.mem_size);
    }
    let asc_base = next;

    let remap_data = |addr: u32| -> u32 {
        for (_, old, size, delta) in &section_delta {
            if addr >= *old && addr < *old + *size {
                return (addr as i64 + delta) as u32;
            }
        }
        addr
    };

    // --- 2. Build the .asc section (addresses only; MACs patched later). ---
    let mut asc = AscBuilder::new(asc_base);
    let lb_ptr = asc.add_policy_state(key);
    struct PatternArg {
        arg: usize,
        /// Pattern AS contents `(addr, len, mac)`.
        tuple: (u32, u32, asc_crypto::Mac),
        /// Address of this argument's extras entry.
        slot: u32,
        /// Length of the literal prefix (for the generated hint code).
        prefix_len: u32,
    }
    struct SiteAsc {
        pred_tuple: Option<(u32, u32, asc_crypto::Mac)>,
        string_args: Vec<(usize, u32, u32, asc_crypto::Mac)>, // (arg, addr, len, mac)
        pattern_args: Vec<PatternArg>,
        mac_slot: u32,
    }
    let mut site_asc = Vec::with_capacity(sites.len());
    for site in &sites {
        let pred_tuple = if opts.control_flow {
            let mut bytes = Vec::new();
            let mut runtime_preds: Vec<u32> = site
                .preds
                .iter()
                .map(|&p| runtime_block(installer, p))
                .collect();
            runtime_preds.sort_unstable();
            runtime_preds.dedup();
            for p in &runtime_preds {
                bytes.extend_from_slice(&p.to_le_bytes());
            }
            Some(asc.add_string(key, &bytes))
        } else {
            None
        };
        let mut string_args = Vec::new();
        let mut pattern_args = Vec::new();
        for (i, a) in site.args.iter().enumerate() {
            match a {
                ArgPolicy::StringLit(s) => {
                    let mut contents = s.clone();
                    contents.push(0); // arguments are NUL-terminated C strings
                    let (addr, len, mac) = asc.add_string(key, &contents);
                    string_args.push((i, addr, len, mac));
                }
                ArgPolicy::Pattern(p) => {
                    let prefix = prefix_star(p).expect("validated in plan");
                    let tuple = asc.add_string(key, p.as_bytes());
                    pattern_args.push(PatternArg {
                        arg: i,
                        tuple,
                        slot: 0, // assigned below, consecutively
                        prefix_len: prefix.len() as u32,
                    });
                }
                _ => {}
            }
        }
        // Extras entries must be consecutive (the kernel walks them from
        // R12 in argument order).
        for pa in &mut pattern_args {
            pa.slot = asc.reserve_pattern_extra(pa.tuple.0);
        }
        let mac_slot = asc.reserve_mac();
        site_asc.push(SiteAsc {
            pred_tuple,
            string_args,
            pattern_args,
            mac_slot,
        });
    }

    // --- 3. Splice in the authenticated-call argument loads. ---
    let site_by_item: HashMap<usize, usize> = sites
        .iter()
        .enumerate()
        .map(|(si, s)| (s.item_index, si))
        .collect();
    let mut new_items: Vec<IrItem> = Vec::with_capacity(unit.items.len() + total_inserts);
    let mut site_new_index: Vec<usize> = vec![0; sites.len()];
    // Internal branches of generated code: (branch item, target item),
    // patched once final addresses exist.
    let mut branch_patches: Vec<(usize, usize)> = Vec::new();
    let synth = |instr: Instruction| {
        IrItem::Instr(IrInstr {
            orig_addr: None,
            instr,
            imm_is_addr: false,
        })
    };
    for (idx, item) in unit.items.iter().enumerate() {
        if let Some(&si) = site_by_item.get(&idx) {
            let site = &sites[si];
            let sa = &site_asc[si];
            let descriptor = site_descriptor(&opts, site);
            let block_id = runtime_block(installer, site.block);
            let IrItem::Instr(sys_instr) = item else {
                unreachable!("sites are instrs")
            };
            let first_insert = new_items.len();

            // Generated hint code per pattern argument (§5.1): compute
            // strlen(arg) - prefix_len and store it in the extras entry.
            // Scratch: R11, R12, LR (all reloaded/unused below).
            for pa in &sa.pattern_args {
                use asc_isa::Opcode;
                let ri = Reg::args()[pa.arg];
                let base = new_items.len();
                new_items.push(synth(Instruction::movi(Reg::R11, 0)));
                new_items.push(synth(Instruction::mov(Reg::R12, ri)));
                new_items.push(synth(Instruction::ldb(Reg::LR, Reg::R12, 0))); // loop head
                new_items.push(synth(Instruction::branch(
                    Opcode::Beq,
                    Reg::LR,
                    Reg::R11,
                    0,
                )));
                new_items.push(synth(Instruction::addi(Reg::R12, Reg::R12, 1)));
                new_items.push(synth(Instruction::jmp(0)));
                new_items.push(synth(Instruction::alu(Opcode::Sub, Reg::R12, Reg::R12, ri)));
                new_items.push(synth(Instruction::addi(
                    Reg::R12,
                    Reg::R12,
                    -(pa.prefix_len as i32),
                )));
                new_items.push(synth(Instruction::movi(Reg::LR, pa.slot)));
                new_items.push(synth(Instruction::stw(Reg::LR, 8, Reg::R12)));
                branch_patches.push((base + 3, base + 6)); // beq -> after loop
                branch_patches.push((base + 5, base + 2)); // jmp -> loop head
            }

            let mut loads: Vec<(Reg, u32)> = Vec::new();
            for (arg, addr, _, _) in &sa.string_args {
                loads.push((Reg::args()[*arg], *addr));
            }
            if let Some(first_extra) = sa.pattern_args.first() {
                loads.push((Reg::R12, first_extra.slot));
            }
            loads.push((Reg::R7, descriptor.bits()));
            loads.push((Reg::R8, block_id));
            loads.push((Reg::R9, sa.pred_tuple.map(|(a, _, _)| a).unwrap_or(0)));
            loads.push((Reg::R10, if opts.control_flow { lb_ptr } else { 0 }));
            loads.push((Reg::R11, sa.mac_slot));
            for (reg, imm) in &loads {
                new_items.push(synth(Instruction::movi(*reg, *imm)));
            }
            new_items.push(synth(sys_instr.instr));
            site_new_index[si] = new_items.len() - 1;
            // The first inserted instruction inherits the syscall's
            // address so branches that targeted the call land on the
            // prologue.
            if let IrItem::Instr(first) = &mut new_items[first_insert] {
                first.orig_addr = sys_instr.orig_addr;
            }
        } else {
            new_items.push(item.clone());
        }
    }

    // --- 4. Emit text; build the address map. ---
    let mut text = Vec::with_capacity(new_text_len);
    let mut addr_map: HashMap<u32, u32> = HashMap::new();
    let mut new_addr_of: Vec<u32> = Vec::with_capacity(new_items.len());
    let mut addr_imm_offsets: Vec<usize> = Vec::new();
    for item in &new_items {
        let addr = text_base + text.len() as u32;
        new_addr_of.push(addr);
        match item {
            IrItem::Instr(i) => {
                if let Some(orig) = i.orig_addr {
                    addr_map.insert(orig, addr);
                }
                if i.imm_is_addr {
                    addr_imm_offsets.push(text.len() + 4);
                }
                text.extend_from_slice(&i.instr.encode());
            }
            IrItem::Raw { orig_addr, bytes } => {
                addr_map.insert(*orig_addr, addr);
                text.extend_from_slice(bytes);
            }
        }
    }
    debug_assert_eq!(text.len(), new_text_len);

    let remap = |addr: u32| -> u32 {
        if let Some(&n) = addr_map.get(&addr) {
            n
        } else {
            remap_data(addr)
        }
    };

    // Fix address immediates in text.
    for off in addr_imm_offsets {
        let old = u32::from_le_bytes(text[off..off + 4].try_into().expect("4 bytes"));
        text[off..off + 4].copy_from_slice(&remap(old).to_le_bytes());
    }

    // Fix the internal branches of installer-generated code.
    for (branch_item, target_item) in branch_patches {
        let off = (new_addr_of[branch_item] - text_base) as usize + 4;
        text[off..off + 4].copy_from_slice(&new_addr_of[target_item].to_le_bytes());
    }

    // --- 5. Assemble the output binary. ---
    let mut out = Binary::new(remap(binary.entry()));
    out.push_section(Section::new(
        sections::TEXT,
        text_base,
        text,
        SectionFlags::RX,
    ));
    let text_index = binary.section_index(sections::TEXT).expect("lift checked");
    for s in binary.sections() {
        if s.name == sections::TEXT {
            continue;
        }
        let new_addr = remap_data(s.addr);
        let mut data = s.data.clone();
        // Remap relocated fields inside this section (e.g. `.word label`
        // pointing into text or into a moved section).
        for r in binary.relocations() {
            if r.section == text_index {
                continue;
            }
            let rs = &binary.sections()[r.section as usize];
            if rs.name != s.name {
                continue;
            }
            let off = r.offset as usize;
            let old = u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes"));
            data[off..off + 4].copy_from_slice(&remap(old).to_le_bytes());
        }
        out.push_section(Section {
            name: s.name.clone(),
            addr: new_addr,
            mem_size: s.mem_size,
            data,
            flags: s.flags,
        });
    }

    // --- 6. Compute call MACs now that call sites are final. ---
    let mut final_policy = ProgramPolicy::new(program, opts.personality.name());
    final_policy.warnings = warnings.clone();
    for (si, site) in sites.iter().enumerate() {
        let sa = &site_asc[si];
        let call_site = new_addr_of[site_new_index[si]];
        let descriptor = site_descriptor(&opts, site);
        let mut args = Vec::new();
        for (i, a) in site.args.iter().enumerate() {
            match a {
                ArgPolicy::Immediate(c) => args.push((i, EncodedArg::Immediate(*c))),
                ArgPolicy::ImmediateAddr(c) => {
                    // The constant is an address into the input binary;
                    // the rewritten program materialises the *remapped*
                    // address at runtime.
                    args.push((i, EncodedArg::Immediate(remap(*c))));
                }
                ArgPolicy::StringLit(_) => {
                    let (_, addr, len, mac) = sa
                        .string_args
                        .iter()
                        .find(|(arg, ..)| *arg == i)
                        .expect("string arg recorded");
                    args.push((
                        i,
                        EncodedArg::AuthString {
                            addr: *addr,
                            len: *len,
                            mac: *mac,
                        },
                    ));
                }
                ArgPolicy::Capability => args.push((i, EncodedArg::Capability)),
                ArgPolicy::Pattern(_) => {
                    let pa = sa
                        .pattern_args
                        .iter()
                        .find(|pa| pa.arg == i)
                        .expect("pattern arg recorded");
                    let (addr, len, mac) = pa.tuple;
                    args.push((i, EncodedArg::Pattern { addr, len, mac }));
                }
                ArgPolicy::Any => {}
            }
        }
        let encoded = EncodedCall {
            syscall_nr: site.nr,
            descriptor,
            call_site,
            block_id: runtime_block(installer, site.block),
            args,
            pred_set: sa.pred_tuple,
            lb_ptr: opts.control_flow.then_some(lb_ptr),
        };
        asc.patch_mac(sa.mac_slot, &encoded.mac(key));

        // Final (output-keyed) policy entry, with address constants
        // remapped to their output locations.
        let mut sp = SyscallPolicy::new(site.nr, call_site, runtime_block(installer, site.block));
        sp.args = site
            .args
            .iter()
            .map(|a| match a {
                ArgPolicy::ImmediateAddr(c) => ArgPolicy::ImmediateAddr(remap(*c)),
                other => other.clone(),
            })
            .collect();
        if opts.control_flow {
            sp.predecessors = Some(
                site.preds
                    .iter()
                    .map(|&p| runtime_block(installer, p))
                    .collect(),
            );
        }
        final_policy.insert(sp);
    }
    let asc_bytes = asc.into_bytes();
    emit_pass(
        sink,
        SPAN_REWRITE,
        "rewrite",
        vec![
            ("sites_rewritten".to_string(), sites.len() as u64),
            ("asc_bytes".to_string(), asc_bytes.len() as u64),
            ("warnings".to_string(), warnings.len() as u64),
        ],
    );
    let asc_len = asc_bytes.len() as u32;
    out.push_section(Section::new(
        sections::ASC,
        asc_base,
        asc_bytes,
        SectionFlags::RW,
    ));

    // The SFIP flow policy: project every site's predecessor set down to
    // syscall-number edges and append the MAC-authenticated digraph after
    // `.asc`. Site predecessors are computed unconditionally (only the
    // per-call pred-set *check* is gated on `control_flow`), so the flow
    // tier is available even for binaries installed without it.
    let flow_sites: Vec<(u16, u32, BTreeSet<u32>)> = sites
        .iter()
        .map(|s| (s.nr, s.block, s.preds.clone()))
        .collect();
    let flow = asc_analysis::syscall_graph::flow_digraph(&flow_sites);
    let flow_bytes = flow.to_bytes(key);
    emit_pass(
        sink,
        SPAN_REWRITE,
        "flow-digraph",
        vec![
            ("flow_edges".to_string(), flow.len() as u64),
            ("flow_bytes".to_string(), flow_bytes.len() as u64),
        ],
    );
    let flow_addr = align_up(asc_base + asc_len);
    let flow_len = flow_bytes.len() as u32;
    out.push_section(Section::new(
        sections::ASCFLOW,
        flow_addr,
        flow_bytes,
        SectionFlags::RO,
    ));

    // Origin privilege: the exact set of final pcs whose `SYSCALL` this
    // installation rewrote, MAC-authenticated like the flow digraph. The
    // kernel refuses any trap from a pc outside the set, so a raw
    // `SYSCALL` gadget (data-in-text, un-disassembled stub, injected
    // code) kills before the MAC path ever runs. No separate pass event:
    // the registry is a byproduct of the rewrite pass reported above.
    let registry: asc_core::SiteRegistry = (0..sites.len())
        .map(|si| new_addr_of[site_new_index[si]])
        .collect();
    out.push_section(Section::new(
        sections::ASCSITES,
        align_up(flow_addr + flow_len),
        registry.to_bytes(key),
        SectionFlags::RO,
    ));

    // --- 7. Symbols, flags. ---
    for sym in binary.symbols() {
        out.push_symbol(asc_object::Symbol {
            name: sym.name.clone(),
            addr: remap(sym.addr),
            kind: sym.kind,
        });
    }
    out.set_program_id(opts.program_id);
    out.set_authenticated(true);
    out.set_relocatable(false);
    out.validate().map_err(InstallError::Lift)?;

    let report = InstallReport {
        policy: final_policy,
        stats,
        precision,
        inlined,
        warnings,
        templates,
    };
    Ok((out, report))
}

fn site_descriptor(opts: &crate::InstallerOptions, site: &SitePlan) -> asc_core::PolicyDescriptor {
    let mut sp = SyscallPolicy::new(site.nr, 0, 0);
    sp.args = site.args.clone();
    if opts.control_flow {
        sp.predecessors = Some(site.preds.iter().copied().collect());
    }
    sp.descriptor()
}

fn align_up(addr: u32) -> u32 {
    addr.div_ceil(PAGE) * PAGE
}
