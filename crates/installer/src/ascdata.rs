//! Builder for the `.asc` section: policy state cell, authenticated
//! strings, predecessor sets, and call-MAC slots.

use std::collections::HashMap;

use asc_crypto::{AuthenticatedString, Mac, MacKey, MemoryChecker, AS_HEADER_LEN, MAC_LEN};

/// Accumulates the `.asc` section contents. Addresses are assigned as data
/// is appended; the caller fixes the base address up front.
#[derive(Debug)]
pub struct AscBuilder {
    base: u32,
    bytes: Vec<u8>,
    /// Dedup: AS contents -> contents address.
    strings: HashMap<Vec<u8>, (u32, u32, Mac)>,
}

impl AscBuilder {
    /// A builder whose section will be loaded at `base`.
    pub fn new(base: u32) -> AscBuilder {
        AscBuilder {
            base,
            bytes: Vec::new(),
            strings: HashMap::new(),
        }
    }

    fn cursor(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }

    /// Reserves and initialises the policy-state cell; returns its address
    /// (`lbPtr`).
    pub fn add_policy_state(&mut self, key: &MacKey) -> u32 {
        let addr = self.cursor();
        self.bytes
            .extend_from_slice(&MemoryChecker::initial_state(key).to_bytes());
        addr
    }

    /// Adds (or reuses) an authenticated string; returns
    /// `(contents address, length, MAC)` — the tuple the encoded call
    /// covers. The pointer aims at the contents; the 20 preceding bytes
    /// hold `len ‖ mac`.
    pub fn add_string(&mut self, key: &MacKey, contents: &[u8]) -> (u32, u32, Mac) {
        if let Some(&entry) = self.strings.get(contents) {
            return entry;
        }
        let s = AuthenticatedString::build(key, contents.to_vec());
        let blob = s.to_bytes();
        let contents_addr = self.cursor() + AS_HEADER_LEN as u32;
        self.bytes.extend_from_slice(&blob);
        let entry = (contents_addr, contents.len() as u32, *s.mac());
        self.strings.insert(contents.to_vec(), entry);
        entry
    }

    /// Reserves a 16-byte call-MAC slot; returns its address.
    pub fn reserve_mac(&mut self) -> u32 {
        let addr = self.cursor();
        self.bytes.extend_from_slice(&[0u8; MAC_LEN]);
        addr
    }

    /// Fills a previously reserved MAC slot.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was not returned by [`AscBuilder::reserve_mac`].
    pub fn patch_mac(&mut self, addr: u32, mac: &Mac) {
        let off = (addr - self.base) as usize;
        self.bytes[off..off + MAC_LEN].copy_from_slice(mac);
    }

    /// Reserves one pattern-extras entry for the kernel's `hint_ptr`
    /// protocol: `{pattern_contents_ptr, hint_len = 1, hint[0] = 0}`. The
    /// hint word is filled in at *runtime* by installer-generated code.
    /// Returns the entry's address. Entries for one call site must be
    /// reserved consecutively; the first entry's address goes in `R12`.
    pub fn reserve_pattern_extra(&mut self, pattern_contents_ptr: u32) -> u32 {
        let addr = self.cursor();
        self.bytes
            .extend_from_slice(&pattern_contents_ptr.to_le_bytes());
        self.bytes.extend_from_slice(&1u32.to_le_bytes());
        self.bytes.extend_from_slice(&0u32.to_le_bytes());
        addr
    }

    /// Finalises the section bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_dedup() {
        let key = MacKey::from_seed(5);
        let mut b = AscBuilder::new(0x8000);
        let lb = b.add_policy_state(&key);
        assert_eq!(lb, 0x8000);
        let (a1, l1, m1) = b.add_string(&key, b"/etc/motd");
        assert_eq!(a1, 0x8000 + 20 + 20); // state cell + AS header
        assert_eq!(l1, 9);
        let (a2, _, _) = b.add_string(&key, b"/etc/motd");
        assert_eq!(a1, a2, "identical strings deduplicated");
        let (a3, _, m3) = b.add_string(&key, b"/tmp");
        assert_ne!(a1, a3);
        assert_ne!(m1, m3);
        let mac_slot = b.reserve_mac();
        b.patch_mac(mac_slot, &[0xAB; 16]);
        let bytes = b.into_bytes();
        let off = (mac_slot - 0x8000) as usize;
        assert_eq!(&bytes[off..off + 16], &[0xAB; 16]);
    }

    #[test]
    fn as_blob_parses_back() {
        let key = MacKey::from_seed(5);
        let mut b = AscBuilder::new(0x8000);
        let (addr, len, mac) = b.add_string(&key, b"hello");
        let bytes = b.into_bytes();
        let header_off = (addr - 0x8000) as usize - AS_HEADER_LEN;
        let parsed = AuthenticatedString::parse(&bytes[header_off..]).unwrap();
        assert_eq!(parsed.contents(), b"hello");
        assert_eq!(parsed.len() as u32, len);
        assert_eq!(parsed.mac(), &mac);
        assert!(parsed.verify(&key));
    }
}
