//! Metapolicies and policy templates (§5.2).
//!
//! A metapolicy states what *must be* protected per system call, rather
//! than what *can be* protected automatically. When static analysis cannot
//! determine a required argument, the installer emits a
//! [`PolicyTemplate`] with holes for the administrator, who can supply
//! values or patterns (from application knowledge or dynamic profiling)
//! through [`Metapolicy::fill`]; filled holes become part of the complete
//! ASC policy on the next install.

use std::collections::BTreeMap;

use asc_core::ArgPolicy;
use asc_kernel::SyscallId;

/// One metapolicy rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetapolicyRule {
    /// Which syscall the rule applies to (`None` = every syscall).
    pub syscall: Option<SyscallId>,
    /// Bitmask of argument indices that must be constrained.
    pub required_args: u8,
}

/// A metapolicy: rules plus administrator-supplied hole fills.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metapolicy {
    rules: Vec<MetapolicyRule>,
    fills: BTreeMap<(String, usize), ArgPolicy>,
}

impl Metapolicy {
    /// An empty metapolicy (no requirements).
    pub fn new() -> Metapolicy {
        Metapolicy::default()
    }

    /// Adds a rule requiring the arguments in `required_args` (bitmask) to
    /// be constrained for `syscall` (or all syscalls when `None`).
    #[must_use]
    pub fn require(mut self, syscall: Option<SyscallId>, required_args: u8) -> Metapolicy {
        self.rules.push(MetapolicyRule {
            syscall,
            required_args,
        });
        self
    }

    /// Administrator fill: constrain argument `arg` of syscall `name`
    /// wherever analysis left it unconstrained.
    #[must_use]
    pub fn fill(mut self, name: &str, arg: usize, policy: ArgPolicy) -> Metapolicy {
        self.fills.insert((name.to_string(), arg), policy);
        self
    }

    /// The union of required-argument masks applying to `id`.
    pub fn required_for(&self, id: SyscallId) -> u8 {
        self.rules
            .iter()
            .filter(|r| r.syscall.is_none() || r.syscall == Some(id))
            .fold(0, |acc, r| acc | r.required_args)
    }

    /// The fill (if any) for `(syscall name, arg)`.
    pub fn fill_for(&self, name: &str, arg: usize) -> Option<&ArgPolicy> {
        self.fills.get(&(name.to_string(), arg))
    }
}

/// An unmet metapolicy requirement at one call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TemplateHole {
    /// Argument index needing a hand-specified constraint.
    pub arg: usize,
}

/// A policy template: a site whose policy does not yet satisfy the
/// metapolicy. The administrator resolves it by adding
/// [`Metapolicy::fill`] entries and re-running the installer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyTemplate {
    /// Call-site address (input binary).
    pub call_site: u32,
    /// Canonical syscall name.
    pub syscall: String,
    /// Remaining holes.
    pub holes: Vec<TemplateHole>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_masks_union() {
        let mp = Metapolicy::new()
            .require(Some(SyscallId::Open), 0b01)
            .require(Some(SyscallId::Open), 0b10)
            .require(None, 0b100);
        assert_eq!(mp.required_for(SyscallId::Open), 0b111);
        assert_eq!(mp.required_for(SyscallId::Read), 0b100);
    }

    #[test]
    fn fills_lookup() {
        let mp = Metapolicy::new().fill("open", 0, ArgPolicy::Pattern("/tmp/*".into()));
        assert_eq!(
            mp.fill_for("open", 0),
            Some(&ArgPolicy::Pattern("/tmp/*".into()))
        );
        assert_eq!(mp.fill_for("open", 1), None);
        assert_eq!(mp.fill_for("read", 0), None);
    }
}
