//! `Installer::install_metered`: pass durations land in the
//! `asc_installer_pass_us` histogram and coverage counters in the
//! `asc_installer_coverage` gauges — and the metered install produces a
//! byte-identical binary and report to the plain one.

use asc_asm::assemble;
use asc_crypto::MacKey;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::Personality;
use asc_metrics::Registry;

const SRC: &str = r#"
    .text
main:
    movi r0, 4          ; write
    movi r1, 1
    movi r2, msg
    movi r3, 6
    syscall
    movi r0, 20         ; getpid
    syscall
    movi r0, 1          ; exit
    movi r1, 0
    syscall
    .rodata
msg: .ascii "hello\n"
"#;

fn installer() -> Installer {
    Installer::new(
        MacKey::from_seed(0xA5C),
        InstallerOptions::new(Personality::Linux),
    )
}

#[test]
fn metered_install_records_passes_and_changes_nothing() {
    let binary = assemble(SRC).expect("assembles");
    let mut registry = Registry::new();
    let (metered, metered_report) = installer()
        .install_metered(&binary, "metered", &mut registry)
        .expect("metered install succeeds");
    let (plain, plain_report) = installer()
        .install(&binary, "metered")
        .expect("plain install succeeds");

    // Metering must not change the artifact.
    assert_eq!(metered.to_bytes(), plain.to_bytes());
    assert_eq!(
        format!("{:?}", metered_report.stats),
        format!("{:?}", plain_report.stats)
    );

    let snap = registry.snapshot();
    let passes: Vec<&str> = snap
        .entries()
        .filter(|(k, _)| k.name == "asc_installer_pass_us")
        .filter_map(|(k, _)| k.label("pass"))
        .collect();
    assert!(
        !passes.is_empty(),
        "no installer passes recorded: {:?}",
        snap.entries().map(|(k, _)| k.render()).collect::<Vec<_>>()
    );
    for pass in &passes {
        let h = snap
            .histogram("asc_installer_pass_us", &[("pass", pass)])
            .expect("pass histogram exists");
        assert_eq!(h.count(), 1, "pass {pass} ran once");
    }

    // Coverage gauges exist for at least one pass and carry the report's
    // site count somewhere (the classification pass exports its counters).
    let coverage = snap
        .entries()
        .filter(|(k, _)| k.name == "asc_installer_coverage")
        .count();
    assert!(coverage > 0, "no coverage gauges recorded");
}

#[test]
fn metered_install_still_rejects_double_installation() {
    let binary = assemble(SRC).expect("assembles");
    let mut registry = Registry::new();
    let (auth, _) = installer()
        .install_metered(&binary, "once", &mut registry)
        .expect("first install succeeds");
    let err = installer()
        .install_metered(&auth, "twice", &mut registry)
        .expect_err("double install must fail");
    assert_eq!(err, asc_installer::InstallError::AlreadyAuthenticated);
}
