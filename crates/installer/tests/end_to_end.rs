//! End-to-end installation tests: assemble → install → execute under an
//! enforcing kernel. This is the full Fig. 2 + Fig. 3 pipeline.

use asc_asm::assemble;
use asc_core::ArgPolicy;
use asc_crypto::MacKey;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{Kernel, KernelOptions, Personality};
use asc_vm::{Machine, RunOutcome};

fn key() -> MacKey {
    MacKey::from_seed(0xA5C)
}

fn install(src: &str, name: &str) -> (asc_object::Binary, asc_installer::InstallReport) {
    let binary = assemble(src).expect("assembles");
    let installer = Installer::new(key(), InstallerOptions::new(Personality::Linux));
    installer.install(&binary, name).expect("installs")
}

fn run_enforcing(binary: &asc_object::Binary, stdin: &[u8]) -> (RunOutcome, Kernel) {
    let mut kernel = Kernel::new(KernelOptions::enforcing(Personality::Linux));
    kernel.set_key(key());
    kernel.set_stdin(stdin.to_vec());
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(binary, kernel).expect("loads");
    let outcome = machine.run(100_000_000);
    (outcome, machine.into_handler())
}

const HELLO: &str = r#"
    .text
main:
    movi r0, 4          ; write
    movi r1, 1
    movi r2, msg
    movi r3, 6
    syscall
    movi r0, 1          ; exit
    movi r1, 0
    syscall
    .rodata
msg: .ascii "hello\n"
"#;

#[test]
fn installed_hello_runs_under_enforcement() {
    let (auth, report) = install(HELLO, "hello");
    assert!(auth.is_authenticated());
    assert!(!auth.is_relocatable(), "output is non-relocatable");
    assert!(auth.section_by_name(".asc").is_some());
    assert_eq!(report.policy.sites(), 2);
    assert_eq!(report.stats.calls, 2);
    let (outcome, kernel) = run_enforcing(&auth, b"");
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
    assert_eq!(kernel.stdout(), b"hello\n");
    assert_eq!(kernel.stats().verified, 2);
    assert!(kernel.alerts().is_empty());
}

#[test]
fn unmodified_binary_fails_under_enforcement() {
    // An uninstalled binary's calls carry no MACs: every call is
    // "unauthenticated" and the process dies on its first syscall.
    let binary = assemble(HELLO).unwrap();
    let (outcome, kernel) = run_enforcing(&binary, b"");
    assert!(outcome.is_killed(), "{outcome:?}");
    assert_eq!(kernel.alerts().len(), 1);
}

#[test]
fn stub_calls_are_inlined_and_run() {
    let src = r#"
        .text
    main:
        movi r1, 1
        movi r2, msg
        movi r3, 3
        call write
        movi r1, 0
        call exit
    write:
        movi r0, 4
        syscall
        ret
    exit:
        movi r0, 1
        syscall
        ret
        .rodata
    msg: .ascii "abc"
    "#;
    let (auth, report) = install(src, "stubby");
    assert_eq!(
        report.inlined,
        vec![("exit".to_string(), 1), ("write".to_string(), 1)]
    );
    // 2 stub sites + 2 inlined sites = 4 policies.
    assert_eq!(report.policy.sites(), 4);
    let (outcome, kernel) = run_enforcing(&auth, b"");
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
    assert_eq!(kernel.stdout(), b"abc");
}

#[test]
fn string_arguments_are_authenticated_and_repointed() {
    let src = r#"
        .text
    main:
        movi r0, 5          ; open("/etc/motd", 0)
        movi r1, path
        movi r2, 0
        movi r3, 0
        syscall
        mov r4, r0
        movi r0, 3          ; read(fd, buf, 32)
        mov r1, r4
        movi r2, buf
        movi r3, 32
        syscall
        mov r5, r0
        movi r0, 4          ; write(1, buf, n)
        movi r1, 1
        movi r2, buf
        mov r3, r5
        syscall
        movi r0, 1
        movi r1, 0
        syscall
        .rodata
    path: .asciz "/etc/motd"
        .bss
    buf: .space 32
    "#;
    let (auth, report) = install(src, "cat");
    // The open's path argument is a string literal in the policy.
    let open_policy = report
        .policy
        .iter()
        .find(|p| p.syscall_nr == 5)
        .expect("open policy exists");
    assert_eq!(
        open_policy.args[0],
        ArgPolicy::StringLit(b"/etc/motd".to_vec())
    );
    assert_eq!(open_policy.args[1], ArgPolicy::Immediate(0));
    let (outcome, kernel) = run_enforcing(&auth, b"");
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
    assert_eq!(kernel.stdout(), b"welcome to svm32\n");
    // String checks burned extra AES blocks.
    assert!(kernel.stats().verify_aes_blocks > 8);
}

#[test]
fn control_flow_order_is_enforced() {
    // A program whose loop makes read follow read; the exit call follows
    // the read. All predecessor sets line up at runtime.
    let src = r#"
        .text
    main:
        movi r6, 0
    loop:
        movi r0, 20         ; getpid
        syscall
        addi r6, r6, 1
        movi r5, 3
        bne r6, r5, loop
        movi r0, 1
        movi r1, 0
        syscall
    "#;
    let (auth, report) = install(src, "loopy");
    let (outcome, kernel) = run_enforcing(&auth, b"");
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
    assert_eq!(kernel.stats().verified, 4);
    // getpid's predecessor set contains both program start and itself.
    let getpid = report.policy.iter().find(|p| p.syscall_nr == 20).unwrap();
    let preds = getpid.predecessors.as_ref().unwrap();
    assert!(preds.contains(&0));
    assert!(preds.contains(&getpid.block_id));
}

#[test]
fn data_section_references_survive_relayout() {
    // A function-pointer table in .data pointing into text, used via
    // indirect call after install: the relocation must be remapped.
    let src = r#"
        .text
    main:
        movi r2, table
        ldw r3, [r2]
        callr r3
        movi r0, 1
        mov r1, r0
        movi r1, 0
        syscall
    target:
        movi r0, 20
        syscall
        ret
        .data
    table: .word target
    "#;
    let (auth, _) = install(src, "tabled");
    let (outcome, kernel) = run_enforcing(&auth, b"");
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
}

#[test]
fn already_authenticated_rejected() {
    let (auth, _) = install(HELLO, "hello");
    let installer = Installer::new(key(), InstallerOptions::new(Personality::Linux));
    assert!(matches!(
        installer.install(&auth, "hello"),
        Err(asc_installer::InstallError::AlreadyAuthenticated)
    ));
}

#[test]
fn wrong_kernel_key_kills() {
    let (auth, _) = install(HELLO, "hello");
    let mut kernel = Kernel::new(KernelOptions::enforcing(Personality::Linux));
    kernel.set_key(MacKey::from_seed(999)); // different key
    kernel.set_brk(auth.highest_addr());
    let mut machine = Machine::load(&auth, kernel).unwrap();
    let outcome = machine.run(10_000_000);
    assert!(outcome.is_killed());
}

#[test]
fn without_control_flow_option() {
    let binary = assemble(HELLO).unwrap();
    let installer = Installer::new(
        key(),
        InstallerOptions::new(Personality::Linux).without_control_flow(),
    );
    let (auth, report) = installer.install(&binary, "hello").unwrap();
    for p in report.policy.iter() {
        assert!(p.predecessors.is_none());
    }
    let (outcome, kernel) = run_enforcing(&auth, b"");
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
    // Fewer AES blocks than the full-policy variant (no pred set, no
    // state MACs).
    assert!(kernel.stats().verify_aes_blocks <= 6);
}

#[test]
fn policy_generation_only_mode() {
    let binary = assemble(HELLO).unwrap();
    let installer = Installer::new(key(), InstallerOptions::new(Personality::Linux));
    let (policy, stats, warnings) = installer.generate_policy(&binary, "hello").unwrap();
    assert_eq!(policy.sites(), 2);
    assert_eq!(stats.calls, 2);
    assert_eq!(stats.sites, 2);
    assert!(warnings.is_empty());
    assert_eq!(policy.distinct_syscalls(), [1u16, 4].into_iter().collect());
}

#[test]
fn unique_block_ids_fold_program_id() {
    let binary = assemble(HELLO).unwrap();
    let installer = Installer::new(
        key(),
        InstallerOptions::new(Personality::Linux).with_program_id(42),
    );
    let (_, report) = installer.install(&binary, "hello").unwrap();
    for p in report.policy.iter() {
        assert_eq!(p.block_id >> 16, 42);
    }
}

#[test]
fn capability_tracking_end_to_end() {
    let src = r#"
        .text
    main:
        movi r0, 5
        movi r1, path
        movi r2, 0
        movi r3, 0
        syscall
        mov r4, r0
        movi r0, 3          ; read(fd from open) — fd arg is a capability
        mov r1, r4
        movi r2, buf
        movi r3, 8
        syscall
        movi r0, 1
        movi r1, 0
        syscall
        .rodata
    path: .asciz "/etc/motd"
        .bss
    buf: .space 8
    "#;
    let binary = assemble(src).unwrap();
    let installer = Installer::new(
        key(),
        InstallerOptions::new(Personality::Linux).with_capability_tracking(),
    );
    let (auth, report) = installer.install(&binary, "captest").unwrap();
    let read_policy = report.policy.iter().find(|p| p.syscall_nr == 3).unwrap();
    assert_eq!(read_policy.args[0], ArgPolicy::Capability);

    let mut kernel = Kernel::new(KernelOptions {
        capability_tracking: true,
        ..KernelOptions::enforcing(Personality::Linux)
    });
    kernel.set_key(key());
    kernel.set_brk(auth.highest_addr());
    let mut machine = Machine::load(&auth, kernel).unwrap();
    let outcome = machine.run(10_000_000);
    assert_eq!(outcome, RunOutcome::Exited(0));
}
