//! Installer edge cases: control flow into rewritten prologues, multi-page
//! relayout, multiple authenticated strings per site, and option
//! interactions.

use asc_asm::assemble;
use asc_core::ArgPolicy;
use asc_crypto::MacKey;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{Kernel, KernelOptions, Personality};
use asc_vm::{Machine, RunOutcome};

fn key() -> MacKey {
    MacKey::from_seed(0xED6E)
}

fn install(src: &str) -> (asc_object::Binary, asc_installer::InstallReport) {
    let binary = assemble(src).expect("assembles");
    let installer = Installer::new(key(), InstallerOptions::new(Personality::Linux));
    installer.install(&binary, "edge").expect("installs")
}

fn run(binary: &asc_object::Binary) -> (RunOutcome, Kernel) {
    let mut kernel = Kernel::new(KernelOptions::enforcing(Personality::Linux));
    kernel.set_key(key());
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(binary, kernel).expect("loads");
    let outcome = machine.run(100_000_000);
    (outcome, machine.into_handler())
}

#[test]
fn branch_targeting_a_syscall_lands_on_the_prologue() {
    // A loop whose back edge targets the syscall instruction itself: after
    // rewriting, the branch must land on the inserted argument loads, or
    // the second iteration would trap with stale policy registers.
    let (auth, _) = install(
        "
        .text
        .entry main
    main:
        movi r4, 0
    back:
        movi r0, 20           ; getpid
        syscall
        addi r4, r4, 1
        movi r5, 3
        blt r4, r5, back
        movi r0, 1
        movi r1, 0
        syscall
    ",
    );
    let (outcome, kernel) = run(&auth);
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
    assert_eq!(kernel.stats().verified, 4);
}

#[test]
fn large_text_pushes_sections_across_pages() {
    // Enough syscall sites that the inserted loads grow .text past its
    // original page, forcing every later section to move; all relocations
    // and policies must survive.
    let mut body = String::new();
    for i in 0..80 {
        body.push_str(&format!(
            "movi r0, 20\nsyscall\nmovi r2, msg{i}\nldb r3, [r2]\n",
        ));
    }
    let mut data = String::new();
    for i in 0..80 {
        data.push_str(&format!("msg{i}: .asciz \"string number {i}\"\n"));
    }
    let src = format!(
        "
        .text
        .entry main
    main:
        {body}
        movi r0, 1
        movi r1, 0
        syscall
        .rodata
        {data}
    "
    );
    let plain = assemble(&src).unwrap();
    let old_rodata = plain.section_by_name(".rodata").unwrap().addr;
    let installer = Installer::new(key(), InstallerOptions::new(Personality::Linux));
    let (auth, report) = installer.install(&plain, "big").unwrap();
    let new_rodata = auth.section_by_name(".rodata").unwrap().addr;
    assert!(new_rodata > old_rodata, "rodata must have moved");
    assert_eq!(report.policy.sites(), 81);
    let (outcome, kernel) = run(&auth);
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
    assert_eq!(kernel.stats().verified, 81);
}

#[test]
fn multiple_string_arguments_in_one_call() {
    // link(existing, new): both pathname arguments become authenticated
    // strings and both registers get repointed.
    let (auth, report) = install(
        "
        .text
        .entry main
    main:
        movi r0, 9            ; link
        movi r1, a
        movi r2, b
        syscall
        movi r0, 1
        movi r1, 0
        syscall
        .rodata
    a: .asciz \"/etc/motd\"
    b: .asciz \"/etc/motd2\"
    ",
    );
    let link = report.policy.iter().find(|p| p.syscall_nr == 9).unwrap();
    assert_eq!(link.args[0], ArgPolicy::StringLit(b"/etc/motd".to_vec()));
    assert_eq!(link.args[1], ArgPolicy::StringLit(b"/etc/motd2".to_vec()));
    let (outcome, kernel) = run(&auth);
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
    assert!(kernel.fs().read_file("/etc/motd2").is_ok());
}

#[test]
fn duplicate_strings_share_one_authenticated_copy() {
    let (auth, _) = install(
        "
        .text
        .entry main
    main:
        movi r0, 33           ; access(\"/etc/motd\", 0)
        movi r1, p1
        movi r2, 0
        syscall
        movi r0, 106          ; stat(\"/etc/motd\", buf)
        movi r1, p2
        movi r2, st
        syscall
        movi r0, 1
        movi r1, 0
        syscall
        .rodata
    p1: .asciz \"/etc/motd\"
    p2: .asciz \"/etc/motd\"
        .bss
    st: .space 16
    ",
    );
    let asc_section = auth.section_by_name(".asc").unwrap();
    let hits = asc_section
        .data
        .windows(10)
        .filter(|w| *w == b"/etc/motd\0")
        .count();
    assert_eq!(hits, 1, "identical string contents are stored once");
    let (outcome, _) = run(&auth);
    assert_eq!(outcome, RunOutcome::Exited(0));
}

#[test]
fn program_id_changes_macs_but_not_behaviour() {
    let src = "
        .text
        .entry main
    main:
        movi r0, 20
        syscall
        movi r0, 1
        movi r1, 0
        syscall
    ";
    let plain = assemble(src).unwrap();
    let mk = |pid| {
        Installer::new(
            key(),
            InstallerOptions::new(Personality::Linux).with_program_id(pid),
        )
        .install(&plain, "p")
        .unwrap()
        .0
    };
    let a = mk(1);
    let b = mk(2);
    assert_ne!(
        a.section_by_name(".asc").unwrap().data,
        b.section_by_name(".asc").unwrap().data,
        "different program ids must change the authenticated data"
    );
    for binary in [a, b] {
        let (outcome, _) = run(&binary);
        assert_eq!(outcome, RunOutcome::Exited(0));
    }
}

#[test]
fn cross_program_asc_sections_are_not_interchangeable() {
    // Swap the .asc of two installs of the *same* program with different
    // program ids: the block ids in R8 (baked into text) no longer match
    // the MACs (baked into .asc) — killed.
    let src = "
        .text
        .entry main
    main:
        movi r0, 20
        syscall
        movi r0, 1
        movi r1, 0
        syscall
    ";
    let plain = assemble(src).unwrap();
    let mk = |pid| {
        Installer::new(
            key(),
            InstallerOptions::new(Personality::Linux).with_program_id(pid),
        )
        .install(&plain, "p")
        .unwrap()
        .0
    };
    let a = mk(1);
    let b = mk(2);
    let mut franken = a.clone();
    let asc_idx = franken.section_index(".asc").unwrap() as usize;
    franken.sections_mut()[asc_idx].data = b.section_by_name(".asc").unwrap().data.clone();
    let (outcome, _) = run(&franken);
    assert!(outcome.is_killed(), "{outcome:?}");
}

#[test]
fn without_control_flow_r9_r10_are_zero() {
    let src = "
        .text
        .entry main
    main:
        movi r0, 20
        syscall
        movi r0, 1
        movi r1, 0
        syscall
    ";
    let plain = assemble(src).unwrap();
    let installer = Installer::new(
        key(),
        InstallerOptions::new(Personality::Linux).without_control_flow(),
    );
    let (auth, report) = installer.install(&plain, "nocf").unwrap();
    for p in report.policy.iter() {
        assert!(p.predecessors.is_none());
        assert!(!p.descriptor().control_flow_constrained());
    }
    let (outcome, kernel) = run(&auth);
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
    // Cheaper verification than the control-flow variant.
    let full = Installer::new(key(), InstallerOptions::new(Personality::Linux))
        .install(&plain, "cf")
        .unwrap()
        .0;
    let (_, kernel_full) = run(&full);
    assert!(kernel.stats().verify_aes_blocks < kernel_full.stats().verify_aes_blocks);
}

#[test]
fn policy_json_roundtrip() {
    let (_, report) = install(
        "
        .text
        .entry main
    main:
        movi r0, 5
        movi r1, p
        movi r2, 0
        movi r3, 0
        syscall
        movi r0, 1
        movi r1, 0
        syscall
        .rodata
    p: .asciz \"/etc/motd\"
    ",
    );
    let json = report.policy.to_json();
    assert!(json.contains("/etc/motd") || json.contains("47")); // bytes or chars
    let back = asc_core::ProgramPolicy::from_json(&json).expect("parses");
    assert_eq!(back, report.policy);
}
