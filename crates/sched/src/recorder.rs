//! The scheduler-owned flight recorder: per-pid bounded [`RingSink`]s
//! merged with scheduling events into one cycle-ordered audit timeline.
//!
//! The recorder is the *black box* of the fail-stop story. It is
//! **always-on capable and perturbation-free by construction**: attaching
//! it installs bounded [`RingSink`]s in the sampled kernels (the kernel's
//! no-perturbation rule guarantees identical charged cycles and stats with
//! or without a sink) and snapshots scheduling state the scheduler already
//! tracks. Nothing the recorder does feeds back into the metered system —
//! the property tests in `tests/audit.rs` prove cycles, per-pid stats,
//! stdout, and the interleaving FNV digest are bit-identical with the
//! recorder attached at N ∈ {2, 8, 64, 1024} under every verify tier.
//!
//! # Sampling soundness
//!
//! At fleet scale (N = 1024) recording every pid costs N rings. The
//! recorder instead samples pids *deterministically*: pid `p` is sampled
//! iff `mix64(p ^ seed)` falls under a rational threshold
//! (`sample_num / sample_den` of the 2^64 space, via the same widening
//! multiply used by [`asc_core::pid_shard`]). Determinism means a replay
//! with the same seed samples the same pids; exactness is preserved
//! because:
//!
//! * every sampled ring counts its overwrites ([`RingSink`]'s
//!   `retained + dropped == recorded` invariant), and
//! * for *unsampled* pids the span totals are reconstructed exactly from
//!   [`KernelStats`]: every trap emits exactly one `TrapEnter`, every
//!   successful verification one `TrapExit`, and every fail-stop one
//!   `Kill` — so `syscalls`, `verified`, and the alert count recover the
//!   span-level event totals without any ring having existed.
//!
//! # Cycle ordering
//!
//! Kernel events carry the *machine-local* cycle clock; the scheduler
//! interleaves machines on a shared virtual clock. The recorder logs one
//! [`SliceWindow`] per slice — `[machine_start, machine_end]` mapped to
//! `[clock_start, clock_end]` — so harvesting translates every ring event
//! to global time: `global = clock_start + (local - machine_start)`. The
//! per-slice batch-window open/close and cache fallback/scrub deltas ride
//! the same windows, giving one merged, causally-ordered timeline.

use std::collections::BTreeMap;

use asc_core::mix64;
use asc_kernel::KernelStats;
use asc_trace::{Event, RingSink};

use crate::Pid;

/// Recorder parameters. Identical configs on identical schedules produce
/// identical audit logs.
#[derive(Clone, Copy, Debug)]
pub struct RecorderConfig {
    /// Ring capacity (events retained per sampled pid).
    pub ring_capacity: usize,
    /// Seed for the deterministic pid-sampling draw.
    pub sample_seed: u64,
    /// Sampling numerator: pid `p` is sampled iff the widening multiply
    /// of `mix64(p ^ sample_seed)` by `sample_den` lands below
    /// `sample_num`. `(1, 1)` samples every pid.
    pub sample_num: u32,
    /// Sampling denominator (must be nonzero, `>= sample_num`).
    pub sample_den: u32,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            ring_capacity: 64,
            sample_seed: 0xB1AC_B0C5,
            sample_num: 1,
            sample_den: 1,
        }
    }
}

impl RecorderConfig {
    /// Whether this config samples `pid`. Pure function of
    /// `(pid, sample_seed, sample_num, sample_den)` — replaying with the
    /// same config samples the same pids.
    pub fn samples(&self, pid: Pid) -> bool {
        debug_assert!(self.sample_den > 0, "sample_den must be nonzero");
        let draw = mix64(u64::from(pid) ^ self.sample_seed);
        let bucket = ((u128::from(draw) * u128::from(self.sample_den)) >> 64) as u32;
        bucket < self.sample_num
    }
}

/// How a slice ended, from the scheduler's perspective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SliceEnd {
    /// The quantum expired; the process stays runnable.
    Preempted,
    /// The process exited with this code.
    Exited(u32),
    /// The kernel fail-stop killed the process (alert rendering).
    Killed(String),
    /// A VM-level fault ended the process.
    Faulted(String),
}

/// One scheduled slice: the bridge between a pid's machine-local cycle
/// clock and the scheduler's shared virtual clock.
#[derive(Clone, Debug)]
pub struct SliceWindow {
    /// The pid that ran.
    pub pid: Pid,
    /// Global slice index (position in the interleaving).
    pub index: u64,
    /// Shared virtual clock when the slice started.
    pub clock_start: u64,
    /// Shared virtual clock when the slice ended.
    pub clock_end: u64,
    /// The pid's machine cycle counter at slice start.
    pub machine_start: u64,
    /// The pid's machine cycle counter at slice end.
    pub machine_end: u64,
    /// Whether the slice ran inside a kernel batch window.
    pub batched: bool,
    /// Cache fallbacks (stale entries degraded cold) during this slice.
    pub fallback_delta: u64,
    /// Cache scrubs (future-epoch entries purged) during this slice.
    pub scrub_delta: u64,
    /// How the slice ended.
    pub end: SliceEnd,
}

/// A kill mark on the shared clock (verifier fail-stop or external
/// [`crate::Scheduler::kill`]).
#[derive(Clone, Debug)]
pub struct KillMark {
    /// The pid that died.
    pub pid: Pid,
    /// Shared virtual clock at the kill.
    pub clock: u64,
    /// Global slice index of the killing slice (`None` for external kills
    /// between slices).
    pub slice_index: Option<u64>,
    /// The kill reason (alert rendering for verifier kills).
    pub reason: String,
}

/// The recorder state the scheduler owns while running.
#[derive(Debug, Default)]
pub(crate) struct Recorder {
    pub(crate) config: RecorderConfig,
    pub(crate) sampled: Vec<Pid>,
    pub(crate) unsampled: Vec<Pid>,
    pub(crate) windows: Vec<SliceWindow>,
    pub(crate) kills: Vec<KillMark>,
}

/// Everything recorded about one pid after harvest.
#[derive(Clone, Debug)]
pub struct PidAudit {
    /// The pid.
    pub pid: Pid,
    /// Whether the pid was sampled (owned a ring).
    pub sampled: bool,
    /// Retained ring events translated to the shared clock, oldest first:
    /// `(global_cycles, event)`. Empty for unsampled pids.
    pub events: Vec<(u64, Event)>,
    /// Events the ring discarded (exact; 0 for unsampled pids).
    pub dropped: u64,
    /// The pid's kernel counters — for unsampled pids this is the *exact*
    /// reconstruction source: `syscalls` spans entered, `verified` spans
    /// completed, the difference (minus kills) never emitted an exit.
    pub stats: KernelStats,
}

impl PidAudit {
    /// Span-level event total for this pid, reconstructed from
    /// [`KernelStats`] alone (valid for sampled and unsampled pids alike):
    /// one `TrapEnter` per trap plus one `TrapExit` per verified call.
    /// Kill events add the pid's alert count on top (tracked by the
    /// scheduler's kill marks, not per-pid stats).
    pub fn span_events(&self) -> u64 {
        self.stats.syscalls + self.stats.verified
    }
}

/// The harvested audit log: every timeline ingredient, cycle-ordered.
#[derive(Clone, Debug)]
pub struct AuditLog {
    /// The recorder's configuration.
    pub config: RecorderConfig,
    /// Every slice window, in execution order.
    pub windows: Vec<SliceWindow>,
    /// Every kill, in occurrence order.
    pub kills: Vec<KillMark>,
    /// Per-pid audit records, in pid order.
    pub pids: Vec<PidAudit>,
}

/// One entry of the merged audit timeline.
#[derive(Clone, Debug)]
pub enum TimelineEntry {
    /// A slice began (`pid`, batch-window opened iff `batched`).
    SliceStart {
        /// The pid receiving the slice.
        pid: Pid,
        /// Global slice index.
        index: u64,
        /// Whether a kernel batch window opened with the slice.
        batched: bool,
    },
    /// A kernel trace event from a sampled pid's ring.
    Kernel {
        /// The pid whose kernel emitted the event.
        pid: Pid,
        /// The event, with machine-local `at_cycles` preserved inside.
        event: Event,
    },
    /// A slice ended; nonzero cache deltas surface degradation here.
    SliceEnd {
        /// The pid whose slice ended.
        pid: Pid,
        /// Global slice index.
        index: u64,
        /// Cache fallbacks during the slice.
        fallbacks: u64,
        /// Cache scrubs during the slice.
        scrubs: u64,
        /// How the slice ended.
        end: SliceEnd,
    },
    /// A process died.
    Kill {
        /// The pid that died.
        pid: Pid,
        /// The kill reason.
        reason: String,
    },
}

impl AuditLog {
    /// The merged, cycle-ordered timeline: slice boundaries (which carry
    /// the batch-window open/close and per-slice cache fallback/scrub
    /// deltas), sampled kernel events mapped onto the shared clock, and
    /// kill marks. Entries are `(global_cycles, entry)`, sorted by cycle
    /// with a deterministic tiebreak (slice order, then event order).
    pub fn timeline(&self) -> Vec<(u64, TimelineEntry)> {
        let mut entries: Vec<(u64, u64, u32, TimelineEntry)> = Vec::new();
        for w in &self.windows {
            entries.push((
                w.clock_start,
                w.index,
                0,
                TimelineEntry::SliceStart {
                    pid: w.pid,
                    index: w.index,
                    batched: w.batched,
                },
            ));
            entries.push((
                w.clock_end,
                w.index,
                2,
                TimelineEntry::SliceEnd {
                    pid: w.pid,
                    index: w.index,
                    fallbacks: w.fallback_delta,
                    scrubs: w.scrub_delta,
                    end: w.end.clone(),
                },
            ));
        }
        for pa in &self.pids {
            for (global, event) in &pa.events {
                // Order kernel events inside the slice they belong to.
                let index = self
                    .windows
                    .iter()
                    .find(|w| w.pid == pa.pid && *global >= w.clock_start && *global <= w.clock_end)
                    .map(|w| w.index)
                    .unwrap_or(u64::MAX);
                entries.push((
                    *global,
                    index,
                    1,
                    TimelineEntry::Kernel {
                        pid: pa.pid,
                        event: event.clone(),
                    },
                ));
            }
        }
        for k in &self.kills {
            entries.push((
                k.clock,
                k.slice_index.unwrap_or(u64::MAX),
                3,
                TimelineEntry::Kill {
                    pid: k.pid,
                    reason: k.reason.clone(),
                },
            ));
        }
        entries.sort_by_key(|e| (e.0, e.1, e.2));
        entries.into_iter().map(|(at, _, _, e)| (at, e)).collect()
    }

    /// The audit record for `pid`, if the pid exists.
    pub fn pid(&self, pid: Pid) -> Option<&PidAudit> {
        self.pids.iter().find(|p| p.pid == pid)
    }

    /// Exact event accounting per sampled pid: for every sampled pid,
    /// `retained + dropped` (what the ring saw) — the seeded property
    /// test asserts this equals the pid's total emitted events.
    pub fn ring_accounting(&self) -> BTreeMap<Pid, (u64, u64)> {
        self.pids
            .iter()
            .filter(|p| p.sampled)
            .map(|p| (p.pid, (p.events.len() as u64, p.dropped)))
            .collect()
    }
}

/// Translates a drained ring into shared-clock events using the pid's
/// slice windows. Events are mapped through the window covering their
/// machine-local cycle stamp; the stamp inside the returned [`Event`] is
/// left machine-local (bundles keep both clocks).
pub(crate) fn map_ring_events(
    pid: Pid,
    ring: &RingSink,
    windows: &[SliceWindow],
) -> (Vec<(u64, Event)>, u64) {
    let pid_windows: Vec<&SliceWindow> = windows.iter().filter(|w| w.pid == pid).collect();
    let mut out = Vec::with_capacity(ring.len());
    for event in ring.events() {
        let local = event.at_cycles;
        // Machine cycles grow monotonically across a pid's slices, so the
        // covering window is the last one whose start is <= the stamp
        // (kill events may be charged exactly at the window end).
        let window = pid_windows
            .iter()
            .rev()
            .find(|w| local >= w.machine_start)
            .or(pid_windows.first());
        let global = match window {
            Some(w) => w.clock_start + (local.min(w.machine_end) - w.machine_start),
            None => local,
        };
        out.push((global, event.clone()));
    }
    (out, ring.dropped_events())
}
