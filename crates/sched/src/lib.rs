//! Deterministic multi-process scheduling over simulated kernels.
//!
//! The paper's verifier is per-process: the policy-state MAC is keyed by a
//! per-process counter, and the kernel maps pid → installed policy. This
//! crate supplies the missing substrate for exercising that machinery
//! under interleaving: a [`Scheduler`] owns N [`Machine`]s (each with its
//! own [`Kernel`] — policy key, anti-replay counter, alert log, stats) and
//! time-slices them on the shared virtual cycle clock with
//! [`Machine::run_until_instret`] preemption.
//!
//! Two properties make the scheduler useful as a test substrate rather
//! than just a harness:
//!
//! * **Reproducibility** — the interleaving is a pure function of the
//!   [`SchedPolicy`] (round-robin, or seeded-random drawn from the
//!   workspace's splitmix64 [`asc_testkit::Rng`]) and the processes'
//!   deterministic execution. Same seed ⇒ bit-identical interleaving,
//!   per-pid output, and aggregate stats.
//! * **Isolation by construction** — nothing verifier-trusted is shared
//!   mutably between processes except the optional
//!   [`SharedVerifyCache`], which is pid-namespaced; each process's
//!   counter, policy-state cell, cache epoch, alerts, and stats live in
//!   its own kernel. The cross-process property tests
//!   (`tests/multiproc.rs`) assert that any interleaving reproduces each
//!   process's solo run byte-for-byte.

use std::cell::RefCell;
use std::rc::Rc;

use asc_core::SharedVerifyCache;
use asc_kernel::{BatchStats, Kernel, KernelStats};
use asc_testkit::Rng;
use asc_trace::RingSink;
use asc_vm::{Machine, RunOutcome, StepOutcome};

pub mod recorder;

use recorder::{map_ring_events, Recorder};
pub use recorder::{
    AuditLog, KillMark, PidAudit, RecorderConfig, SliceEnd, SliceWindow, TimelineEntry,
};

/// Process identifier, 1-based (pid 1 is the historical single-process
/// default; the scheduler assigns 1, 2, 3, … in spawn order).
pub type Pid = u32;

/// How the scheduler picks the next runnable process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Cycle through runnable pids in spawn order.
    RoundRobin,
    /// Pick uniformly among runnable pids from a seeded splitmix64 stream.
    /// The same seed always yields the same interleaving.
    SeededRandom(u64),
}

/// Scheduler construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct SchedConfig {
    /// Interleaving policy.
    pub policy: SchedPolicy,
    /// Retired-instruction quantum per slice (preemption granularity).
    pub slice_instrs: u64,
    /// Per-process cycle budget; a process exceeding it is marked
    /// [`ProcState::Faulted`] rather than looping forever.
    pub budget_cycles: u64,
    /// When `Some(k)`, every slice runs inside a kernel batch window of
    /// depth `k`: enforced calls drain through the submission ring and the
    /// pid's cache namespace is detached from the shared family for up to
    /// `k` calls at a time (see `asc_kernel`'s batch module). Per-pid
    /// outputs are bit-identical with batching on or off; only shared
    /// probe traffic changes.
    pub batch_depth: Option<usize>,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            policy: SchedPolicy::RoundRobin,
            slice_instrs: 10_000,
            budget_cycles: 3_000_000_000,
            batch_depth: None,
        }
    }
}

/// Why a process is no longer runnable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProcState {
    /// Eligible for further slices.
    Runnable,
    /// Exited normally (or executed `halt`) with this code.
    Exited(u32),
    /// Fail-stop killed — by the kernel's verifier (carrying the alert
    /// rendering) or externally via [`Scheduler::kill`].
    Killed(String),
    /// Died to a VM-level condition (memory fault, bad instruction, cycle
    /// budget); carries a debug rendering of the outcome.
    Faulted(String),
}

impl ProcState {
    /// Whether the process may receive further slices.
    pub fn is_runnable(&self) -> bool {
        matches!(self, ProcState::Runnable)
    }
}

/// One scheduled process: a machine (whose handler is its private
/// [`Kernel`]) plus scheduling state.
pub struct Process {
    pid: Pid,
    name: String,
    machine: Machine<Kernel>,
    state: ProcState,
    slices: u64,
}

impl Process {
    /// The process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The name given at spawn (usually the workload name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current scheduling state.
    pub fn state(&self) -> &ProcState {
        &self.state
    }

    /// Number of slices this process has received.
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<Kernel> {
        &self.machine
    }

    /// Mutable machine access (isolation tests corrupt memory mid-run the
    /// same way the fault campaigns do).
    pub fn machine_mut(&mut self) -> &mut Machine<Kernel> {
        &mut self.machine
    }

    /// The process's kernel.
    pub fn kernel(&self) -> &Kernel {
        self.machine.handler()
    }

    /// Mutable kernel access (arming faults, attaching metrics).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        self.machine.handler_mut()
    }

    /// Captured standard output.
    pub fn stdout(&self) -> &[u8] {
        self.kernel().stdout()
    }

    /// This process's kernel statistics.
    pub fn stats(&self) -> KernelStats {
        *self.kernel().stats()
    }
}

/// A deterministic scheduler over N processes.
///
/// Spawn machines with [`Scheduler::spawn`], then either [`Scheduler::run`]
/// to completion or drive slices manually with [`Scheduler::step`] /
/// [`Scheduler::run_slice`] (the campaign and isolation tests inject
/// faults between slices this way).
pub struct Scheduler {
    config: SchedConfig,
    procs: Vec<Process>,
    shared_cache: Option<Rc<RefCell<SharedVerifyCache>>>,
    rng: Option<Rng>,
    cursor: usize,
    clock: u64,
    interleaving: Vec<Pid>,
    recorder: Option<Recorder>,
}

impl Scheduler {
    /// A scheduler whose processes keep private per-kernel verify caches.
    pub fn new(config: SchedConfig) -> Scheduler {
        Scheduler {
            rng: match config.policy {
                SchedPolicy::SeededRandom(seed) => Some(Rng::new(seed)),
                SchedPolicy::RoundRobin => None,
            },
            config,
            procs: Vec::new(),
            shared_cache: None,
            cursor: 0,
            clock: 0,
            interleaving: Vec::new(),
            recorder: None,
        }
    }

    /// A scheduler owning a pid-namespaced [`SharedVerifyCache`]; every
    /// spawned kernel gets a handle and operates only on its own pid's
    /// namespace (still gated on the kernel's `verify_cache` option).
    pub fn with_shared_cache(config: SchedConfig) -> Scheduler {
        let mut sched = Scheduler::new(config);
        sched.shared_cache = Some(Rc::new(RefCell::new(SharedVerifyCache::new())));
        sched
    }

    /// The shared cache family, if this scheduler owns one.
    pub fn shared_cache(&self) -> Option<&Rc<RefCell<SharedVerifyCache>>> {
        self.shared_cache.as_ref()
    }

    /// Adds a process; returns its pid (assigned 1, 2, 3, … in spawn
    /// order). Sets the kernel's pid and, when this scheduler owns a
    /// shared cache, hands the kernel its handle.
    pub fn spawn(&mut self, name: &str, mut machine: Machine<Kernel>) -> Pid {
        let pid = (self.procs.len() + 1) as Pid;
        machine.handler_mut().set_pid(pid);
        if let Some(shared) = self.shared_cache.as_ref() {
            machine.handler_mut().share_cache(Rc::clone(shared));
        }
        if let Some(rec) = self.recorder.as_mut() {
            if rec.config.samples(pid) {
                rec.sampled.push(pid);
                machine
                    .handler_mut()
                    .set_trace_sink(Box::new(RingSink::new(rec.config.ring_capacity)));
            } else {
                rec.unsampled.push(pid);
            }
        }
        self.procs.push(Process {
            pid,
            name: name.to_string(),
            machine,
            state: ProcState::Runnable,
            slices: 0,
        });
        pid
    }

    /// Runs one slice of `pid` (which must be runnable): up to
    /// `slice_instrs` retired instructions, bounded by the remaining cycle
    /// budget. Advances the shared clock by the cycles consumed and
    /// records the slice in the interleaving.
    pub fn run_slice(&mut self, pid: Pid) -> &ProcState {
        let idx = pid
            .checked_sub(1)
            .map(|i| i as usize)
            .filter(|&i| i < self.procs.len())
            .unwrap_or_else(|| panic!("no such pid {pid}"));
        let proc = &mut self.procs[idx];
        assert!(
            proc.state.is_runnable(),
            "pid {pid} is not runnable: {:?}",
            proc.state
        );
        let slice_index = self.interleaving.len() as u64;
        self.interleaving.push(pid);
        proc.slices += 1;
        let before = proc.machine.cycles();
        let clock_start = self.clock;
        let stats_before = *proc.kernel().stats();
        let target = proc.machine.instret() + self.config.slice_instrs;
        let remaining = self.config.budget_cycles.saturating_sub(before).max(1);
        if let Some(depth) = self.config.batch_depth {
            proc.machine.handler_mut().open_batch_window(depth);
        }
        let outcome = proc.machine.run_until_instret(target, remaining);
        if self.config.batch_depth.is_some() {
            // Close regardless of outcome: a killed/faulted process must
            // not leave its namespace detached from the shared family.
            proc.machine.handler_mut().close_batch_window();
        }
        self.clock += proc.machine.cycles() - before;
        match outcome {
            StepOutcome::Running => {}
            StepOutcome::Done(RunOutcome::Exited(code)) => proc.state = ProcState::Exited(code),
            StepOutcome::Done(RunOutcome::Halted) => proc.state = ProcState::Exited(0),
            StepOutcome::Done(RunOutcome::Killed(reason)) => {
                // The kernel already dropped its shared-cache namespace in
                // its fail-stop path; the scheduler only records the state.
                proc.state = ProcState::Killed(reason);
            }
            StepOutcome::Done(other) => proc.state = ProcState::Faulted(format!("{other:?}")),
        }
        if self.recorder.is_some() {
            // Snapshot first: the recorder observes scheduling state the
            // slice already produced, it never feeds back into it.
            let proc = &self.procs[idx];
            let stats_after = *proc.kernel().stats();
            let end = match proc.state() {
                ProcState::Runnable => SliceEnd::Preempted,
                ProcState::Exited(code) => SliceEnd::Exited(*code),
                ProcState::Killed(reason) => SliceEnd::Killed(reason.clone()),
                ProcState::Faulted(detail) => SliceEnd::Faulted(detail.clone()),
            };
            let window = SliceWindow {
                pid,
                index: slice_index,
                clock_start,
                clock_end: self.clock,
                machine_start: before,
                machine_end: proc.machine().cycles(),
                batched: self.config.batch_depth.is_some(),
                fallback_delta: stats_after.cache_fallbacks - stats_before.cache_fallbacks,
                scrub_delta: stats_after.cache_scrubs - stats_before.cache_scrubs,
                end: end.clone(),
            };
            let clock = self.clock;
            let Some(rec) = self.recorder.as_mut() else {
                unreachable!("recorder presence checked above");
            };
            if let SliceEnd::Killed(reason) = &end {
                rec.kills.push(KillMark {
                    pid,
                    clock,
                    slice_index: Some(slice_index),
                    reason: reason.clone(),
                });
            }
            rec.windows.push(window);
        }
        &self.procs[idx].state
    }

    /// Picks the next runnable process per the policy and runs one slice.
    /// Returns the pid that ran, or `None` when no process is runnable.
    pub fn step(&mut self) -> Option<Pid> {
        let runnable: Vec<usize> = (0..self.procs.len())
            .filter(|&i| self.procs[i].state.is_runnable())
            .collect();
        if runnable.is_empty() {
            return None;
        }
        let idx = match self.rng.as_mut() {
            Some(rng) => runnable[rng.range_usize(0, runnable.len())],
            None => {
                // Round-robin: first runnable index at or after the cursor.
                let n = self.procs.len();
                let idx = (0..n)
                    .map(|off| (self.cursor + off) % n)
                    .find(|&i| self.procs[i].state.is_runnable())
                    .expect("runnable set is non-empty");
                self.cursor = (idx + 1) % n;
                idx
            }
        };
        let pid = self.procs[idx].pid;
        self.run_slice(pid);
        Some(pid)
    }

    /// Runs slices until no process is runnable.
    pub fn run(&mut self) {
        while self.step().is_some() {}
    }

    /// Externally kills `pid` (mid-slice from the other processes'
    /// perspective): marks it [`ProcState::Killed`] and drops its
    /// namespace from the shared cache, if any. Every other process's
    /// counter, cache epoch, and policy state are untouched — the
    /// isolation property tests assert exactly this.
    pub fn kill(&mut self, pid: Pid, reason: &str) {
        let idx = (pid - 1) as usize;
        assert!(idx < self.procs.len(), "no such pid {pid}");
        self.procs[idx].state = ProcState::Killed(reason.to_string());
        if let Some(shared) = self.shared_cache.as_ref() {
            shared.borrow_mut().drop_pid(pid);
        }
        let clock = self.clock;
        if let Some(rec) = self.recorder.as_mut() {
            rec.kills.push(KillMark {
                pid,
                clock,
                slice_index: None,
                reason: reason.to_string(),
            });
        }
    }

    /// Attaches the flight recorder. Already-spawned and future processes
    /// are sampled per [`RecorderConfig::samples`]; sampled kernels get a
    /// bounded [`RingSink`] each. Attaching is perturbation-free: charged
    /// cycles, stats, outputs, and the interleaving are bit-identical with
    /// or without the recorder (asserted by `tests/audit.rs`).
    ///
    /// # Panics
    ///
    /// Panics if a recorder is already attached.
    pub fn attach_recorder(&mut self, config: RecorderConfig) {
        assert!(self.recorder.is_none(), "recorder already attached");
        let mut rec = Recorder {
            config,
            ..Recorder::default()
        };
        for proc in &mut self.procs {
            if config.samples(proc.pid) {
                rec.sampled.push(proc.pid);
                proc.kernel_mut()
                    .set_trace_sink(Box::new(RingSink::new(config.ring_capacity)));
            } else {
                rec.unsampled.push(proc.pid);
            }
        }
        self.recorder = Some(rec);
    }

    /// Whether a recorder is attached.
    pub fn recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Detaches the recorder and harvests the audit log: drains every
    /// sampled pid's ring, maps its events onto the shared virtual clock
    /// via the recorded slice windows, and packages the slice windows,
    /// kill marks, and per-pid stats (the exact reconstruction source for
    /// unsampled pids). Returns `None` if no recorder was attached.
    pub fn take_audit(&mut self) -> Option<AuditLog> {
        let rec = self.recorder.take()?;
        let mut pids = Vec::with_capacity(self.procs.len());
        for proc in &mut self.procs {
            let pid = proc.pid;
            let sampled = rec.sampled.contains(&pid);
            let (events, dropped) = if sampled {
                let ring = proc
                    .kernel_mut()
                    .take_trace_sink()
                    .expect("sampled pid owns a ring")
                    .into_any()
                    .downcast::<RingSink>()
                    .expect("recorder sinks are RingSinks");
                map_ring_events(pid, &ring, &rec.windows)
            } else {
                (Vec::new(), 0)
            };
            pids.push(PidAudit {
                pid,
                sampled,
                events,
                dropped,
                stats: proc.stats(),
            });
        }
        Some(AuditLog {
            config: rec.config,
            windows: rec.windows,
            kills: rec.kills,
            pids,
        })
    }

    /// The shared virtual clock: total cycles consumed across all slices.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The recorded interleaving: one pid per slice, in execution order.
    pub fn interleaving(&self) -> &[Pid] {
        &self.interleaving
    }

    /// All processes, in spawn (pid) order.
    pub fn processes(&self) -> &[Process] {
        &self.procs
    }

    /// The process with the given pid.
    pub fn process(&self, pid: Pid) -> &Process {
        &self.procs[(pid - 1) as usize]
    }

    /// Mutable access to the process with the given pid.
    pub fn process_mut(&mut self, pid: Pid) -> &mut Process {
        &mut self.procs[(pid - 1) as usize]
    }

    /// Kernel statistics summed over every process, in pid order.
    pub fn aggregate_stats(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for proc in &self.procs {
            total.absorb(proc.kernel().stats());
        }
        total
    }

    /// `(pid, stats)` for every process, in pid order.
    pub fn per_pid_stats(&self) -> Vec<(Pid, KernelStats)> {
        self.procs.iter().map(|p| (p.pid, p.stats())).collect()
    }

    /// Batch-path counters summed over every kernel (all zero unless
    /// [`SchedConfig::batch_depth`] is set).
    pub fn batch_stats(&self) -> BatchStats {
        let mut total = BatchStats::default();
        for proc in &self.procs {
            total.absorb(&proc.kernel().batch_stats());
        }
        total
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("policy", &self.config.policy)
            .field("procs", &self.procs.len())
            .field("clock", &self.clock)
            .finish()
    }
}
