//! Seeded property tests (via `asc-testkit`) for the histogram algebra the
//! perf-trajectory harness leans on: merging snapshots from many kernels
//! must behave like one kernel that saw every observation, regardless of
//! how the observations were split or in which order the parts merge.

use asc_metrics::Histogram;
use asc_testkit::{check, Rng};

/// Draws a value with a wide dynamic range (0 to ~2^40), like cycle counts.
fn value(rng: &mut Rng) -> u64 {
    let magnitude = rng.range_u32(0, 41);
    rng.next_u64() & ((1u64 << magnitude) - 1).max(1)
}

fn fill(rng: &mut Rng, n: usize) -> Histogram {
    let mut h = Histogram::new();
    for _ in 0..n {
        let v = value(rng);
        h.record(v);
    }
    h
}

/// `fill` with a size drawn from `0..hi` (hoists the draw so the borrow
/// checker sees one `rng` borrow at a time).
fn fill_upto(rng: &mut Rng, hi: usize) -> Histogram {
    let n = rng.range_usize(0, hi);
    fill(rng, n)
}

#[test]
fn merge_is_commutative() {
    check(0xA5C_0001, 64, |rng| {
        let a = fill_upto(rng, 40);
        let b = fill_upto(rng, 40);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "a∪b != b∪a");
    });
}

#[test]
fn merge_is_associative() {
    check(0xA5C_0002, 64, |rng| {
        let a = fill_upto(rng, 30);
        let b = fill_upto(rng, 30);
        let c = fill_upto(rng, 30);
        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "(a∪b)∪c != a∪(b∪c)");
    });
}

#[test]
fn merged_count_and_sum_equal_elementwise_totals() {
    check(0xA5C_0003, 64, |rng| {
        let parts: Vec<Histogram> = (0..rng.range_usize(1, 6))
            .map(|_| fill_upto(rng, 50))
            .collect();
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        let count: u64 = parts.iter().map(Histogram::count).sum();
        let sum: u64 = parts.iter().map(Histogram::sum).sum();
        assert_eq!(merged.count(), count, "merged count != Σ part counts");
        assert_eq!(merged.sum(), sum, "merged sum != Σ part sums");
        if count > 0 {
            let max = parts.iter().map(Histogram::max).max().expect("non-empty");
            let min = parts
                .iter()
                .filter(|p| p.count() > 0)
                .map(Histogram::min)
                .min()
                .expect("non-empty");
            assert_eq!(merged.max(), max);
            assert_eq!(merged.min(), min);
        }
    });
}

#[test]
fn merge_equals_single_recorder() {
    // Splitting a stream across k histograms and merging reproduces the
    // histogram that saw the whole stream — the exact situation of the
    // Andrew benchmark (one registry per tool kernel, merged for the
    // report).
    check(0xA5C_0004, 48, |rng| {
        let k = rng.range_usize(1, 5);
        let mut whole = Histogram::new();
        let mut parts = vec![Histogram::new(); k];
        for _ in 0..rng.range_usize(0, 120) {
            let v = value(rng);
            whole.record(v);
            let which = rng.range_usize(0, k);
            parts[which].record(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, whole, "split-and-merge != single recorder");
    });
}
