//! Seeded property tests for `Snapshot::diff`: the windowed-telemetry
//! delta must be the exact inverse of `Snapshot::merge` on every exact
//! field, across random metric families, label sets, and observation
//! splits.

use asc_metrics::{MetricValue, Registry, Snapshot};
use asc_testkit::Rng;

const NAMES: [&str; 4] = ["verify_cycles", "calls_total", "level", "bytes"];
const LABELS: [&str; 3] = ["cold", "warm", "fallback"];

/// Drives a random batch of observations into `registry`, mirroring the
/// counter/histogram observations into `shadow` (a registry receiving
/// only this batch) so the expected window delta is known exactly.
fn drive(registry: &mut Registry, shadow: &mut Registry, rng: &mut Rng, ops: usize) {
    for _ in 0..ops {
        let name = NAMES[rng.range_usize(0, NAMES.len())];
        let label = LABELS[rng.range_usize(0, LABELS.len())];
        let labels = [("path", label)];
        match name {
            "calls_total" => {
                let n = rng.range_u64(1, 100);
                let id = registry.counter(name, &labels);
                registry.inc(id, n);
                let id = shadow.counter(name, &labels);
                shadow.inc(id, n);
            }
            "level" => {
                // Gauges are levels: diff carries the current level, so
                // the shadow takes the same final value.
                let v = rng.range_u64(0, 1000) as f64;
                let id = registry.gauge(name, &labels);
                registry.set(id, v);
                let id = shadow.gauge(name, &labels);
                shadow.set(id, v);
            }
            _ => {
                // Histograms: exercise zero and a high octave, but stay
                // below sum saturation (a saturated cumulative sum makes
                // exact window deltas unrecoverable by design; the
                // `u64::MAX` placement itself is pinned in the histogram
                // unit tests).
                let v = match rng.range_u32(0, 20) {
                    0 => 0,
                    1 => 1 << 52,
                    _ => rng.range_u64(0, 1 << 40),
                };
                let id = registry.histogram(name, &labels);
                registry.observe(id, v);
                let id = shadow.histogram(name, &labels);
                shadow.observe(id, v);
            }
        }
    }
}

/// Asserts two snapshots agree on every exact field: counter values,
/// histogram count/sum/buckets, gauge levels. (Histogram `min`/`max` in a
/// diff are bucket-bound approximations, checked separately.)
fn assert_exact_fields_equal(got: &Snapshot, want: &Snapshot, context: &str) {
    let got_keys: Vec<_> = got.entries().map(|(k, _)| k.clone()).collect();
    let want_keys: Vec<_> = want.entries().map(|(k, _)| k.clone()).collect();
    assert_eq!(got_keys, want_keys, "{context}: key sets differ");
    for ((key, g), (_, w)) in got.entries().zip(want.entries()) {
        match (g, w) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                assert_eq!(a, b, "{context}: counter {}", key.render());
            }
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                assert_eq!(a, b, "{context}: gauge {}", key.render());
            }
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                assert_eq!(a.count(), b.count(), "{context}: count {}", key.render());
                assert_eq!(a.sum(), b.sum(), "{context}: sum {}", key.render());
                assert_eq!(
                    a.nonzero_buckets().collect::<Vec<_>>(),
                    b.nonzero_buckets().collect::<Vec<_>>(),
                    "{context}: buckets {}",
                    key.render()
                );
            }
            (a, b) => panic!(
                "{context}: type mismatch at {}: {a:?} vs {b:?}",
                key.render()
            ),
        }
    }
}

/// diff ∘ merge identity: capture a snapshot, observe a random window,
/// capture again — the diff of the two snapshots equals a snapshot of
/// just the window's observations, on every exact field.
#[test]
fn diff_recovers_each_window_exactly() {
    for round in 0..16u64 {
        let mut rng = Rng::new(0xD1FF_5EED ^ round);
        let mut registry = Registry::new();
        let mut discard = Registry::new();
        drive(&mut registry, &mut discard, &mut rng, 200);
        let mut prev = registry.snapshot();
        for window in 0..4 {
            let mut shadow = Registry::new();
            drive(&mut registry, &mut shadow, &mut rng, 50 + window * 13);
            let cur = registry.snapshot();
            let delta = cur.diff(&prev);
            // The shadow saw only this window's observations, but the
            // delta keeps every key the registry ever registered — merge
            // the shadow over a zeroed copy of the delta's key set by
            // comparing only keys the shadow has, then checking the rest
            // are zero.
            let shadow_snap = shadow.snapshot();
            for (key, value) in delta.entries() {
                let labels: Vec<(&str, &str)> = key
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                match (value, shadow_snap.get(&key.name, &labels)) {
                    (MetricValue::Counter(c), Some(MetricValue::Counter(s))) => {
                        assert_eq!(c, s, "round {round} window {window}: {}", key.render());
                    }
                    (MetricValue::Counter(c), None) => {
                        assert_eq!(*c, 0, "round {round}: untouched counter must be zero");
                    }
                    (MetricValue::Histogram(h), Some(MetricValue::Histogram(s))) => {
                        assert_eq!(h.count(), s.count(), "round {round}: {}", key.render());
                        assert_eq!(h.sum(), s.sum(), "round {round}: {}", key.render());
                        assert_eq!(
                            h.nonzero_buckets().collect::<Vec<_>>(),
                            s.nonzero_buckets().collect::<Vec<_>>(),
                            "round {round}: {}",
                            key.render()
                        );
                        // Bucket-bound min/max bracket the exact extremes.
                        assert!(h.min() <= s.min(), "round {round}: min overshot");
                        assert!(h.max() >= s.max(), "round {round}: max undershot");
                    }
                    (MetricValue::Histogram(h), None) => {
                        assert_eq!(h.count(), 0, "round {round}: untouched histogram");
                    }
                    (MetricValue::Gauge(g), Some(MetricValue::Gauge(s))) => {
                        assert_eq!(g, s, "round {round}: gauge level rides through");
                    }
                    (MetricValue::Gauge(_), None) => {} // level set in an earlier window
                    (v, s) => panic!("round {round}: type drift {v:?} vs {s:?}"),
                }
            }
            prev = cur;
        }
    }
}

/// merge ∘ diff identity: merging a diff back onto the earlier snapshot
/// reproduces the later snapshot on every exact field, for random
/// observation splits.
#[test]
fn merging_a_diff_back_reproduces_the_later_snapshot() {
    for round in 0..16u64 {
        let mut rng = Rng::new(0x5EED_D1FF ^ round.wrapping_mul(0x9E37));
        let mut registry = Registry::new();
        let mut discard = Registry::new();
        drive(&mut registry, &mut discard, &mut rng, 150);
        let earlier = registry.snapshot();
        drive(&mut registry, &mut discard, &mut rng, 150);
        let later = registry.snapshot();

        let delta = later.diff(&earlier);
        let mut rebuilt = earlier.clone();
        rebuilt.merge(&delta);
        // Gauges merge by max, so only the counter/histogram identity is
        // exact; restrict the comparison accordingly by rebuilding the
        // gauge levels from `later`.
        assert_exact_fields_equal_modulo_gauges(&rebuilt, &later, round);
    }
}

/// Gauges merge by max (high-water mark) but diff by carry-through, so
/// merge∘diff is only an identity on counters and histograms.
fn assert_exact_fields_equal_modulo_gauges(got: &Snapshot, want: &Snapshot, round: u64) {
    for ((key, g), (_, w)) in got.entries().zip(want.entries()) {
        match (g, w) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                assert_eq!(a, b, "round {round}: counter {}", key.render());
            }
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                assert_eq!(a.count(), b.count(), "round {round}: {}", key.render());
                assert_eq!(a.sum(), b.sum(), "round {round}: {}", key.render());
                assert_eq!(
                    a.nonzero_buckets().collect::<Vec<_>>(),
                    b.nonzero_buckets().collect::<Vec<_>>(),
                    "round {round}: {}",
                    key.render()
                );
            }
            _ => {}
        }
    }
}

/// The diff of a snapshot with itself is all-zero (counters and
/// histograms) with gauge levels intact, and diffing against an empty
/// snapshot is the identity.
#[test]
fn diff_identities() {
    let mut rng = Rng::new(0x1D3A_0001);
    let mut registry = Registry::new();
    let mut discard = Registry::new();
    drive(&mut registry, &mut discard, &mut rng, 120);
    let snap = registry.snapshot();

    let zero = snap.diff(&snap);
    for (key, value) in zero.entries() {
        match value {
            MetricValue::Counter(c) => assert_eq!(*c, 0, "{}", key.render()),
            MetricValue::Histogram(h) => {
                assert_eq!((h.count(), h.sum()), (0, 0), "{}", key.render())
            }
            MetricValue::Gauge(_) => {}
        }
    }

    let identity = snap.diff(&Snapshot::new());
    assert_exact_fields_equal(&identity, &snap, "diff vs empty");
}
