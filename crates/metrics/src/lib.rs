//! A typed, zero-external-dependency metrics registry.
//!
//! The paper's evaluation (and `KernelStats`) reports only aggregate sums
//! and averages; this crate is the substrate for *distributions*: counters,
//! gauges, and log-linear [`Histogram`]s (exact count/sum, bounded-error
//! p50/p90/p99, exact max) keyed by metric name plus a small label set —
//! e.g. `asc_verify_cycles{path="warm"}`. The kernel's trap handler, the
//! installer, and the bench harnesses all record into a [`Registry`];
//! [`Snapshot`]s are mergeable across kernels (multi-program benchmarks run
//! tools on separate kernels and report one distribution) and render two
//! ways: Prometheus-style text exposition ([`Snapshot::to_prometheus`]) and
//! [`asc_core::json`] values ([`Snapshot::to_value`]).
//!
//! Like the flight recorder, metrics follow the **no-perturbation rule**:
//! recording is attached behind an off-by-default option and never feeds
//! back into the cost model, so charged cycles and the paper tables are
//! byte-identical with or without a registry attached.

mod histogram;

pub use histogram::Histogram;

use std::collections::BTreeMap;

use asc_core::json::Value;

/// A metric's identity: its name plus a (sorted) label set.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (Prometheus conventions: `snake_case`, unit-suffixed).
    pub name: String,
    /// Label pairs, sorted by key so equal label sets compare equal
    /// regardless of construction order.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Renders as `name` or `name{k="v",...}`. Label values are escaped
    /// per the Prometheus text exposition format.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote, and line feed become `\\`, `\"`, and `\n`.
/// Everything else (including other control characters and UTF-8) passes
/// through untouched, exactly as the format specifies.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// One metric's current value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time level.
    Gauge(f64),
    /// A value distribution.
    Histogram(Histogram),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// Handle to a registered counter (stable for the registry's lifetime).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

/// The metrics registry. Registration resolves `(name, labels)` to a dense
/// handle once; the hot path (the trap handler records per-syscall) is then
/// an array index, no lookups and no allocation.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    metrics: Vec<(MetricKey, MetricValue)>,
    index: BTreeMap<MetricKey, usize>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn slot(&mut self, key: MetricKey, init: MetricValue) -> usize {
        if let Some(&i) = self.index.get(&key) {
            assert_eq!(
                self.metrics[i].1.type_name(),
                init.type_name(),
                "metric `{}` re-registered as a different type",
                key.render()
            );
            return i;
        }
        let i = self.metrics.len();
        self.index.insert(key.clone(), i);
        self.metrics.push((key, init));
        i
    }

    /// Registers (or finds) a counter.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric type.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> CounterId {
        CounterId(self.slot(MetricKey::new(name, labels), MetricValue::Counter(0)))
    }

    /// Registers (or finds) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric type.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> GaugeId {
        GaugeId(self.slot(MetricKey::new(name, labels), MetricValue::Gauge(0.0)))
    }

    /// Registers (or finds) a histogram.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric type.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)]) -> HistogramId {
        HistogramId(self.slot(
            MetricKey::new(name, labels),
            MetricValue::Histogram(Histogram::new()),
        ))
    }

    /// Adds `n` to a counter.
    pub fn inc(&mut self, id: CounterId, n: u64) {
        match &mut self.metrics[id.0].1 {
            MetricValue::Counter(c) => *c += n,
            _ => unreachable!("CounterId always indexes a counter"),
        }
    }

    /// Sets a gauge.
    pub fn set(&mut self, id: GaugeId, value: f64) {
        match &mut self.metrics[id.0].1 {
            MetricValue::Gauge(g) => *g = value,
            _ => unreachable!("GaugeId always indexes a gauge"),
        }
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        match &mut self.metrics[id.0].1 {
            MetricValue::Histogram(h) => h.record(value),
            _ => unreachable!("HistogramId always indexes a histogram"),
        }
    }

    /// Immutable view of a histogram.
    pub fn histogram_at(&self, id: HistogramId) -> &Histogram {
        match &self.metrics[id.0].1 {
            MetricValue::Histogram(h) => h,
            _ => unreachable!("HistogramId always indexes a histogram"),
        }
    }

    /// A point-in-time, mergeable copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            entries: self
                .metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// A mergeable point-in-time copy of a [`Registry`]'s metrics, ordered by
/// key so every rendering is deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    entries: BTreeMap<MetricKey, MetricValue>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// The entries, in key order.
    pub fn entries(&self) -> impl Iterator<Item = (&MetricKey, &MetricValue)> {
        self.entries.iter()
    }

    /// Looks up one metric by name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.entries.get(&MetricKey::new(name, labels))
    }

    /// The histogram under `(name, labels)`, if that metric is one.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.get(name, labels) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The counter value under `(name, labels)`, if that metric is one.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get(name, labels) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Sums a histogram-valued metric's `sum` over every label combination
    /// it was recorded under (the cross-path reconstruction identity:
    /// `sum_over_labels(asc_verify_cycles) == KernelStats::verify_cycles`).
    pub fn histogram_sum_across_labels(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| match v {
                MetricValue::Histogram(h) => h.sum(),
                _ => 0,
            })
            .sum()
    }

    /// Merges a histogram-valued metric across every label combination.
    pub fn histogram_across_labels(&self, name: &str) -> Histogram {
        let mut merged = Histogram::new();
        for (k, v) in &self.entries {
            if k.name == name {
                if let MetricValue::Histogram(h) = v {
                    merged.merge(h);
                }
            }
        }
        merged
    }

    /// Merges `other` into `self`: counters and histograms add (associative
    /// and commutative, exact); gauges keep the maximum, the high-water
    /// mark a merged report wants from point-in-time levels.
    pub fn merge(&mut self, other: &Snapshot) {
        for (key, value) in &other.entries {
            self.merge_entry(key, value);
        }
    }

    /// Merges a registry's current contents directly into this snapshot,
    /// with the same semantics as [`Snapshot::merge`] but without
    /// materialising an intermediate `Snapshot` per source. A fleet
    /// harness folding a thousand kernels' registries into one report
    /// clones each metric key at most once (on first sight) instead of
    /// once per kernel.
    pub fn absorb_registry(&mut self, registry: &Registry) {
        for (key, value) in &registry.metrics {
            self.merge_entry(key, value);
        }
    }

    /// What changed since `earlier`: the per-metric delta of two snapshots
    /// of the same sources, the windowed-telemetry inverse of
    /// [`Snapshot::merge`]. For every key in `self`:
    ///
    /// * counters subtract (saturating — monotone sources never go
    ///   backwards, so a clamp only hides caller error, never data);
    /// * histograms subtract element-wise via [`Histogram::diff`]
    ///   (`count`/`sum`/buckets exact, `min`/`max` bucket-bound
    ///   approximations);
    /// * gauges are levels, not accumulations — the delta carries the
    ///   *current* level unchanged, so a windowed report still shows the
    ///   gauge's latest reading;
    /// * keys absent from `earlier` (a source registered mid-window) are
    ///   carried wholesale.
    ///
    /// Keys present only in `earlier` are dropped: a later snapshot of
    /// the same sources always covers the earlier key set. Cost is one
    /// ordered pass with lookups — cheap enough to run on every scheduler
    /// window boundary.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|(key, value)| {
                let delta = match (value, earlier.entries.get(key)) {
                    (MetricValue::Counter(c), Some(MetricValue::Counter(e))) => {
                        MetricValue::Counter(c.saturating_sub(*e))
                    }
                    (MetricValue::Histogram(h), Some(MetricValue::Histogram(e))) => {
                        MetricValue::Histogram(h.diff(e))
                    }
                    // Gauges, and anything `earlier` never saw (or saw as
                    // a different type), pass through at current value.
                    (v, _) => v.clone(),
                };
                (key.clone(), delta)
            })
            .collect();
        Snapshot { entries }
    }

    fn merge_entry(&mut self, key: &MetricKey, value: &MetricValue) {
        match self.entries.get_mut(key) {
            None => {
                self.entries.insert(key.clone(), value.clone());
            }
            Some(mine) => match (mine, value) {
                (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = a.max(*b),
                (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                (mine, theirs) => panic!(
                    "metric `{}` is a {} here but a {} in the merged snapshot",
                    key.render(),
                    mine.type_name(),
                    theirs.type_name()
                ),
            },
        }
    }

    /// Prometheus-style text exposition: `# TYPE` comments, cumulative
    /// `_bucket{le=...}` series with a `+Inf` terminator, `_sum`/`_count`
    /// per histogram.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut last_name = "";
        for (key, value) in &self.entries {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} {}", key.name, value.type_name());
                last_name = &key.name;
            }
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{} {c}", key.render());
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{} {g}", key.render());
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (upper, count) in h.nonzero_buckets() {
                        cumulative += count;
                        let mut labels: Vec<(&str, String)> = key
                            .labels
                            .iter()
                            .map(|(k, v)| (k.as_str(), v.clone()))
                            .collect();
                        labels.push(("le", upper.to_string()));
                        let body: Vec<String> = labels
                            .iter()
                            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
                            .collect();
                        let _ = writeln!(
                            out,
                            "{}_bucket{{{}}} {cumulative}",
                            key.name,
                            body.join(",")
                        );
                    }
                    let mut inf_labels: Vec<String> = key
                        .labels
                        .iter()
                        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
                        .collect();
                    inf_labels.push("le=\"+Inf\"".to_string());
                    let _ = writeln!(
                        out,
                        "{}_bucket{{{}}} {}",
                        key.name,
                        inf_labels.join(","),
                        h.count()
                    );
                    let suffixed = |suffix: &str| {
                        let mut k = key.clone();
                        k.name = format!("{}{suffix}", key.name);
                        k.render()
                    };
                    let _ = writeln!(out, "{} {}", suffixed("_sum"), h.sum());
                    let _ = writeln!(out, "{} {}", suffixed("_count"), h.count());
                }
            }
        }
        out
    }

    /// Renders as an [`asc_core::json`] value: an array of entries, each
    /// `{name, labels, type, ...}`; histograms carry exact count/sum/min/max,
    /// the p50/p90/p99 quantiles, and the non-empty `[upper, count]` buckets.
    pub fn to_value(&self) -> Value {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|(key, value)| {
                let mut fields = vec![
                    ("name".to_string(), Value::Str(key.name.clone())),
                    (
                        "labels".to_string(),
                        Value::Object(
                            key.labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                                .collect(),
                        ),
                    ),
                    (
                        "type".to_string(),
                        Value::Str(value.type_name().to_string()),
                    ),
                ];
                match value {
                    MetricValue::Counter(c) => {
                        fields.push(("value".to_string(), Value::Num(*c as f64)));
                    }
                    MetricValue::Gauge(g) => {
                        fields.push(("value".to_string(), Value::Num(*g)));
                    }
                    MetricValue::Histogram(h) => {
                        fields.push(("count".to_string(), Value::Num(h.count() as f64)));
                        fields.push(("sum".to_string(), Value::Num(h.sum() as f64)));
                        fields.push(("min".to_string(), Value::Num(h.min() as f64)));
                        fields.push(("max".to_string(), Value::Num(h.max() as f64)));
                        fields.push(("p50".to_string(), Value::Num(h.quantile(0.50) as f64)));
                        fields.push(("p90".to_string(), Value::Num(h.quantile(0.90) as f64)));
                        fields.push(("p99".to_string(), Value::Num(h.quantile(0.99) as f64)));
                        fields.push((
                            "buckets".to_string(),
                            Value::Array(
                                h.nonzero_buckets()
                                    .map(|(upper, count)| {
                                        Value::Array(vec![
                                            Value::Num(upper as f64),
                                            Value::Num(count as f64),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ));
                    }
                }
                Value::Object(fields)
            })
            .collect();
        Value::Array(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_stable_and_deduplicated() {
        let mut r = Registry::new();
        let a = r.counter("calls_total", &[("path", "cold")]);
        let b = r.counter("calls_total", &[("path", "cold")]);
        assert_eq!(a, b, "same key resolves to the same handle");
        let c = r.counter("calls_total", &[("path", "warm")]);
        assert_ne!(a, c);
        r.inc(a, 2);
        r.inc(c, 5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("calls_total", &[("path", "cold")]), Some(2));
        assert_eq!(snap.counter("calls_total", &[("path", "warm")]), Some(5));
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut r = Registry::new();
        let a = r.gauge("g", &[("a", "1"), ("b", "2")]);
        let b = r.gauge("g", &[("b", "2"), ("a", "1")]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_is_rejected() {
        let mut r = Registry::new();
        r.counter("m", &[]);
        r.histogram("m", &[]);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_histograms() {
        let mut r1 = Registry::new();
        let c1 = r1.counter("n", &[]);
        let h1 = r1.histogram("h", &[]);
        r1.inc(c1, 3);
        r1.observe(h1, 100);
        let mut r2 = Registry::new();
        let c2 = r2.counter("n", &[]);
        let h2 = r2.histogram("h", &[]);
        let g2 = r2.gauge("g", &[]);
        r2.inc(c2, 4);
        r2.observe(h2, 200);
        r2.observe(h2, 300);
        r2.set(g2, 7.5);

        let mut merged = r1.snapshot();
        merged.merge(&r2.snapshot());
        assert_eq!(merged.counter("n", &[]), Some(7));
        let h = merged.histogram("h", &[]).expect("histogram merged");
        assert_eq!((h.count(), h.sum()), (3, 600));
        assert_eq!(
            merged.get("g", &[]),
            Some(&MetricValue::Gauge(7.5)),
            "absent gauge adopts the other side's value"
        );
    }

    #[test]
    fn absorb_registry_matches_snapshot_merge() {
        let mut r1 = Registry::new();
        let c1 = r1.counter("n", &[("shard", "3")]);
        let h1 = r1.histogram("h", &[]);
        r1.inc(c1, 3);
        r1.observe(h1, 100);
        let mut r2 = Registry::new();
        let c2 = r2.counter("n", &[("shard", "3")]);
        let h2 = r2.histogram("h", &[]);
        r2.inc(c2, 4);
        r2.observe(h2, 250);

        let mut via_merge = Snapshot::new();
        via_merge.merge(&r1.snapshot());
        via_merge.merge(&r2.snapshot());
        let mut via_absorb = Snapshot::new();
        via_absorb.absorb_registry(&r1);
        via_absorb.absorb_registry(&r2);
        assert_eq!(via_absorb, via_merge, "absorb is merge without the clone");
        assert_eq!(via_absorb.counter("n", &[("shard", "3")]), Some(7));
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_typed() {
        let mut r = Registry::new();
        let h = r.histogram("verify_cycles", &[("path", "cold")]);
        r.observe(h, 10);
        r.observe(h, 10);
        r.observe(h, 5000);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE verify_cycles histogram"), "{text}");
        assert!(
            text.contains("verify_cycles_bucket{path=\"cold\",le=\"10\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("verify_cycles_bucket{path=\"cold\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("verify_cycles_sum{path=\"cold\"} 5020"),
            "{text}"
        );
        assert!(
            text.contains("verify_cycles_count{path=\"cold\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn json_rendering_parses_back() {
        let mut r = Registry::new();
        let h = r.histogram("h", &[("k", "v")]);
        r.observe(h, 42);
        let c = r.counter("c", &[]);
        r.inc(c, 9);
        let value = r.snapshot().to_value();
        let text = value.to_pretty();
        let parsed = asc_core::json::Value::parse(&text).expect("snapshot JSON parses");
        assert_eq!(parsed, value, "snapshot JSON round-trips");
    }

    /// Inverse of [`escape_label_value`], for the round-trip tests: a
    /// Prometheus scraper's unescaping of `\\`, `\"`, and `\n`.
    fn unescape_label_value(escaped: &str) -> String {
        let mut out = String::with_capacity(escaped.len());
        let mut chars = escaped.chars();
        while let Some(ch) = chars.next() {
            if ch != '\\' {
                out.push(ch);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        out
    }

    #[test]
    fn hostile_label_values_escape_and_round_trip() {
        let hostile = [
            "plain",
            "back\\slash",
            "quo\"te",
            "line\nfeed",
            "\\\"\n",
            "\\n is literal backslash-n",
            "trailing\\",
            "mixed \\ \" \n déjà-vu",
        ];
        for value in hostile {
            let escaped = escape_label_value(value);
            assert!(!escaped.contains('\n'), "newline survived: {escaped:?}");
            assert_eq!(
                unescape_label_value(&escaped),
                value,
                "escaping must round-trip {value:?}"
            );
        }
    }

    #[test]
    fn exposition_escapes_label_values_at_every_site() {
        let mut r = Registry::new();
        let hostile = "bad\\path\"with\nnewline";
        let c = r.counter("hits_total", &[("path", hostile)]);
        r.inc(c, 1);
        let g = r.gauge("level", &[("path", hostile)]);
        r.set(g, 2.0);
        let h = r.histogram("cost", &[("path", hostile)]);
        r.observe(h, 3);
        let text = r.snapshot().to_prometheus();
        let escaped = "bad\\\\path\\\"with\\nnewline";
        assert!(
            text.contains(&format!("hits_total{{path=\"{escaped}\"}} 1")),
            "counter site: {text}"
        );
        assert!(
            text.contains(&format!("level{{path=\"{escaped}\"}} 2")),
            "gauge site: {text}"
        );
        assert!(
            text.contains(&format!("cost_bucket{{path=\"{escaped}\",le=\"3\"}} 1")),
            "bucket site: {text}"
        );
        assert!(
            text.contains(&format!("cost_bucket{{path=\"{escaped}\",le=\"+Inf\"}} 1")),
            "+Inf site: {text}"
        );
        assert!(
            text.contains(&format!("cost_sum{{path=\"{escaped}\"}} 3")),
            "sum site: {text}"
        );
        // The exposition format is line-oriented: a raw newline in a label
        // value would have split this family across a bogus line.
        for line in text.lines() {
            assert!(
                line.is_empty() || line.starts_with('#') || line.contains(' '),
                "malformed exposition line {line:?}"
            );
        }
    }

    #[test]
    fn cross_label_reconstruction_helpers() {
        let mut r = Registry::new();
        for (path, v) in [("cold", 100u64), ("warm", 20), ("warm", 30)] {
            let h = r.histogram("cycles", &[("path", path)]);
            r.observe(h, v);
        }
        let snap = r.snapshot();
        assert_eq!(snap.histogram_sum_across_labels("cycles"), 150);
        let merged = snap.histogram_across_labels("cycles");
        assert_eq!((merged.count(), merged.sum()), (3, 150));
    }
}
