//! The log-linear histogram: exact count/sum, bounded relative error on
//! quantiles.
//!
//! Values `0..16` get one bucket each (exact). Above that, every power-of-two
//! octave is split into 16 linear sub-buckets, so a bucket's width is at most
//! 1/16 of its lower bound — quantile estimates carry ≤ 6.25% relative error
//! while the whole `u64` range fits in a few hundred buckets. `count`, `sum`,
//! `min`, and `max` are tracked exactly, and [`Histogram::merge`] is a plain
//! element-wise add, so merging is associative and commutative and the merged
//! count/sum equal the element-wise totals bit for bit.

/// Sub-bucket resolution: each octave is split into `1 << SUB_BITS` linear
/// sub-buckets.
const SUB_BITS: u32 = 4;
/// Number of linear sub-buckets per octave (and the exact-bucket cutoff).
const SUB: u64 = 1 << SUB_BITS;

/// Maps a value to its bucket index.
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = msb - SUB_BITS;
    let sub = (value >> octave) & (SUB - 1);
    (SUB as u32 + octave * SUB as u32 + sub as u32) as usize
}

/// The inclusive upper bound of a bucket index (saturating at `u64::MAX`).
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let octave = ((index - SUB) / SUB) as u32;
    let sub = (index - SUB) % SUB;
    let lo = (SUB << octave) + (sub << octave);
    lo.saturating_add((1u64 << octave) - 1)
}

/// A log-linear histogram over `u64` values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts, grown lazily to the highest bucket observed.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations (one bucket touch).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations (saturating at `u64::MAX`, reachable
    /// only by recording values near the top of the `u64` range).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound of the bucket
    /// holding the rank-`ceil(q·count)` observation, clamped to the exact
    /// observed `max`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Adds `other`'s observations into `self`. Element-wise over buckets,
    /// so merge order never changes the result.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The observations `self` gained since `earlier` was captured, as a
    /// new histogram: the inverse of [`Histogram::merge`] for the exact
    /// fields. `earlier` must be a previous snapshot of the same
    /// histogram (every bucket of `earlier` ≤ the matching bucket here);
    /// `count`, `sum`, and the per-bucket counts of the delta are then
    /// exact — `earlier.merge(&delta)` reproduces `self` bucket for
    /// bucket. `min`/`max` cannot be recovered from cumulative state, so
    /// the delta approximates them from its bucket bounds: `min` is the
    /// lower bound of its first occupied bucket, `max` the upper bound of
    /// its last occupied bucket clamped to the exact cumulative `max`.
    /// Quantiles (which only read buckets and the `max` clamp) stay
    /// upper-bound estimates with the usual ≤ 6.25% relative error.
    ///
    /// Windowed telemetry is the intended caller: subtracting the
    /// previous window's snapshot yields the distribution of just that
    /// window's observations, in O(buckets) with no allocation beyond the
    /// delta itself.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut buckets = self.buckets.clone();
        for (b, o) in buckets.iter_mut().zip(earlier.buckets.iter()) {
            *b = b.saturating_sub(*o);
        }
        let count = self.count.saturating_sub(earlier.count);
        let sum = self.sum.saturating_sub(earlier.sum);
        let first = buckets.iter().position(|&n| n > 0);
        let last = buckets.iter().rposition(|&n| n > 0);
        let (min, max) = match (count, first, last) {
            (0, ..) | (_, None, _) | (_, _, None) => (0, 0),
            (_, Some(first), Some(last)) => {
                let lo = if first == 0 {
                    0
                } else {
                    bucket_upper(first - 1) + 1
                };
                (lo, bucket_upper(last).min(self.max))
            }
        };
        Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, in ascending
    /// bound order (rendering; the Prometheus exposition cumulates these).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_upper(idx), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for q in [0.0, 0.5, 1.0] {
            let got = h.quantile(q);
            assert!(got < 16, "q={q} -> {got}");
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.sum(), (0..16).sum::<u64>());
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every value lands in a bucket whose bounds contain it, and bucket
        // indices are monotone in the value.
        let mut prev_idx = 0;
        for &v in &[
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1000,
            4096,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx >= prev_idx, "index not monotone at {v}");
            prev_idx = idx;
            let hi = bucket_upper(idx);
            assert!(v <= hi, "value {v} above bucket upper {hi}");
            if idx > 0 {
                let prev_hi = bucket_upper(idx - 1);
                assert!(v > prev_hi, "value {v} not above previous bucket {prev_hi}");
            }
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let got = h.quantile(q);
            let err = got.abs_diff(exact) as f64 / exact as f64;
            assert!(err <= 0.0625, "q={q}: got {got}, exact {exact}, err {err}");
            assert!(got >= exact, "upper-bound estimate must not undershoot");
        }
        assert_eq!(h.quantile(1.0), 10_000, "max is exact");
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn merge_equals_interleaved_recording() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..1000u64 {
            let v = i.wrapping_mul(2654435761) % 100_000;
            all.record(v);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (0, 0, 0, 0));
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn zero_is_an_exact_bucket() {
        // 0 lands in the first exact bucket — its own bucket, not shared
        // with 1 — and every quantile of an all-zero distribution is 0.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_upper(0), 0);
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (2, 0, 0, 0));
        assert_eq!(h.nonzero_buckets().collect::<Vec<_>>(), vec![(0, 2)]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        // Mixed with a nonzero value, 0 still holds p50 of {0, 0, 7}.
        h.record(7);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn u64_max_lands_in_the_top_bucket_without_overflow() {
        // The top octave's arithmetic must not overflow: u64::MAX maps to
        // the last sub-bucket of octave 59, whose upper bound saturates at
        // u64::MAX exactly.
        let idx = bucket_index(u64::MAX);
        assert_eq!(bucket_upper(idx), u64::MAX);
        let lo = bucket_upper(idx - 1) + 1;
        assert!(lo > u64::MAX / 2, "top bucket lo = {lo}");

        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!((h.count(), h.min(), h.max()), (1, u64::MAX, u64::MAX));
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.nonzero_buckets().collect::<Vec<_>>(), vec![(u64::MAX, 1)]);
        // Quantiles clamp to the exact max, so even the bucket's huge
        // width cannot push the estimate past the observation.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), u64::MAX, "q={q}");
        }
    }

    #[test]
    fn extremes_merge_and_quantile_together() {
        // Both edge values in one histogram: {0, u64::MAX}. p50 must come
        // from the 0 bucket, p100 from the exact max.
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!((h.min(), h.max()), (0, u64::MAX));
        assert_eq!(h.sum(), u64::MAX, "0 contributes nothing to the sum");
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // Merging preserves the extremes element-wise.
        let mut other = Histogram::new();
        other.record(42);
        other.merge(&h);
        assert_eq!((other.min(), other.max()), (0, u64::MAX));
        assert_eq!(other.count(), 3);
    }

    #[test]
    fn diff_recovers_the_window_exactly() {
        // earlier + window = later  ⇒  later.diff(earlier) == window on
        // every exact field (count, sum, buckets).
        let mut earlier = Histogram::new();
        let mut window = Histogram::new();
        let mut later = Histogram::new();
        for i in 0..500u64 {
            let v = i.wrapping_mul(0x9E37_79B9) % 1_000_000;
            if i % 4 == 0 {
                window.record(v);
            } else {
                earlier.record(v);
            }
        }
        later.merge(&earlier);
        later.merge(&window);
        let delta = later.diff(&earlier);
        assert_eq!(delta.count(), window.count());
        assert_eq!(delta.sum(), window.sum());
        assert_eq!(
            delta.nonzero_buckets().collect::<Vec<_>>(),
            window.nonzero_buckets().collect::<Vec<_>>()
        );
        // min/max are bucket-bound approximations: they bracket the exact
        // window extremes within one bucket's width.
        assert!(delta.min() <= window.min());
        assert!(delta.max() >= window.max());
        assert!(delta.max() <= later.max());
        // Round trip: merging the delta back onto `earlier` reproduces
        // `later` bucket for bucket.
        let mut rebuilt = earlier.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt.count(), later.count());
        assert_eq!(rebuilt.sum(), later.sum());
        assert_eq!(
            rebuilt.nonzero_buckets().collect::<Vec<_>>(),
            later.nonzero_buckets().collect::<Vec<_>>()
        );
    }

    #[test]
    fn diff_of_identical_snapshots_is_empty() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 99, 1 << 30, u64::MAX] {
            h.record(v);
        }
        let delta = h.diff(&h.clone());
        assert_eq!(
            (delta.count(), delta.sum(), delta.min(), delta.max()),
            (0, 0, 0, 0)
        );
        assert_eq!(delta.quantile(0.5), 0);
        assert_eq!(delta.nonzero_buckets().count(), 0);
    }
}
