//! The log-linear histogram: exact count/sum, bounded relative error on
//! quantiles.
//!
//! Values `0..16` get one bucket each (exact). Above that, every power-of-two
//! octave is split into 16 linear sub-buckets, so a bucket's width is at most
//! 1/16 of its lower bound — quantile estimates carry ≤ 6.25% relative error
//! while the whole `u64` range fits in a few hundred buckets. `count`, `sum`,
//! `min`, and `max` are tracked exactly, and [`Histogram::merge`] is a plain
//! element-wise add, so merging is associative and commutative and the merged
//! count/sum equal the element-wise totals bit for bit.

/// Sub-bucket resolution: each octave is split into `1 << SUB_BITS` linear
/// sub-buckets.
const SUB_BITS: u32 = 4;
/// Number of linear sub-buckets per octave (and the exact-bucket cutoff).
const SUB: u64 = 1 << SUB_BITS;

/// Maps a value to its bucket index.
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = msb - SUB_BITS;
    let sub = (value >> octave) & (SUB - 1);
    (SUB as u32 + octave * SUB as u32 + sub as u32) as usize
}

/// The inclusive upper bound of a bucket index (saturating at `u64::MAX`).
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let octave = ((index - SUB) / SUB) as u32;
    let sub = (index - SUB) % SUB;
    let lo = (SUB << octave) + (sub << octave);
    lo.saturating_add((1u64 << octave) - 1)
}

/// A log-linear histogram over `u64` values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts, grown lazily to the highest bucket observed.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations (one bucket touch).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += n;
        self.sum += value * n;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound of the bucket
    /// holding the rank-`ceil(q·count)` observation, clamped to the exact
    /// observed `max`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Adds `other`'s observations into `self`. Element-wise over buckets,
    /// so merge order never changes the result.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, in ascending
    /// bound order (rendering; the Prometheus exposition cumulates these).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_upper(idx), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for q in [0.0, 0.5, 1.0] {
            let got = h.quantile(q);
            assert!(got < 16, "q={q} -> {got}");
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.sum(), (0..16).sum::<u64>());
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every value lands in a bucket whose bounds contain it, and bucket
        // indices are monotone in the value.
        let mut prev_idx = 0;
        for &v in &[
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1000,
            4096,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx >= prev_idx, "index not monotone at {v}");
            prev_idx = idx;
            let hi = bucket_upper(idx);
            assert!(v <= hi, "value {v} above bucket upper {hi}");
            if idx > 0 {
                let prev_hi = bucket_upper(idx - 1);
                assert!(v > prev_hi, "value {v} not above previous bucket {prev_hi}");
            }
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let got = h.quantile(q);
            let err = got.abs_diff(exact) as f64 / exact as f64;
            assert!(err <= 0.0625, "q={q}: got {got}, exact {exact}, err {err}");
            assert!(got >= exact, "upper-bound estimate must not undershoot");
        }
        assert_eq!(h.quantile(1.0), 10_000, "max is exact");
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn merge_equals_interleaved_recording() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..1000u64 {
            let v = i.wrapping_mul(2654435761) % 100_000;
            all.record(v);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (0, 0, 0, 0));
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
