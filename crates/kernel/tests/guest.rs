//! Integration tests: unmodified guest programs (assembled from SVM32
//! source) running against the simulated kernel — the baseline substrate
//! every experiment builds on.

use asc_asm::assemble;
use asc_kernel::{Kernel, KernelOptions, Personality, SyscallId};
use asc_vm::{Machine, RunOutcome};

fn run(src: &str, stdin: &[u8]) -> (RunOutcome, Kernel) {
    let binary = assemble(src).expect("assembles");
    let mut kernel = Kernel::new(KernelOptions::plain(Personality::Linux));
    kernel.set_stdin(stdin.to_vec());
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(&binary, kernel).expect("loads");
    let outcome = machine.run(100_000_000);
    (outcome, machine.into_handler())
}

const PRELUDE: &str = "
    .equ SYS_EXIT, 1
    .equ SYS_READ, 3
    .equ SYS_WRITE, 4
    .equ SYS_OPEN, 5
    .equ SYS_CLOSE, 6
    .equ SYS_UNLINK, 10
    .equ SYS_GETPID, 20
    .equ SYS_MKDIR, 39
    .equ SYS_BRK, 45
    .equ SYS_GETTIMEOFDAY, 78
    .equ SYS_SOCKET, 102
    .equ SYS_SENDTO, 109
    .equ SYS_RECVFROM, 110
    .equ SYS_GETDENTS, 141
";

#[test]
fn hello_world_to_stdout() {
    let (outcome, kernel) = run(
        &format!(
            "{PRELUDE}
        .text
    main:
        movi r0, SYS_WRITE
        movi r1, 1
        movi r2, msg
        movi r3, 14
        syscall
        movi r0, SYS_EXIT
        movi r1, 0
        syscall
        .rodata
    msg: .ascii \"hello, world!\\n\"
    "
        ),
        b"",
    );
    assert_eq!(outcome, RunOutcome::Exited(0));
    assert_eq!(kernel.stdout(), b"hello, world!\n");
    assert_eq!(kernel.trace().len(), 2);
    assert_eq!(kernel.trace()[0].id, SyscallId::Write);
}

#[test]
fn open_read_file_roundtrip() {
    // cat /etc/motd to stdout.
    let (outcome, kernel) = run(
        &format!(
            "{PRELUDE}
        .text
    main:
        movi r0, SYS_OPEN
        movi r1, path
        movi r2, 0
        movi r3, 0
        syscall
        mov r4, r0            ; fd
        movi r0, SYS_READ
        mov r1, r4
        movi r2, buf
        movi r3, 64
        syscall
        mov r5, r0            ; n
        movi r0, SYS_WRITE
        movi r1, 1
        movi r2, buf
        mov r3, r5
        syscall
        movi r0, SYS_CLOSE
        mov r1, r4
        syscall
        movi r0, SYS_EXIT
        movi r1, 0
        syscall
        .rodata
    path: .asciz \"/etc/motd\"
        .bss
    buf: .space 64
    "
        ),
        b"",
    );
    assert_eq!(outcome, RunOutcome::Exited(0));
    assert_eq!(kernel.stdout(), b"welcome to svm32\n");
}

#[test]
fn stdin_echo() {
    let (outcome, kernel) = run(
        &format!(
            "{PRELUDE}
        .text
    main:
        movi r0, SYS_READ
        movi r1, 0
        movi r2, buf
        movi r3, 32
        syscall
        mov r4, r0
        movi r0, SYS_WRITE
        movi r1, 1
        movi r2, buf
        mov r3, r4
        syscall
        movi r0, SYS_EXIT
        mov r1, r4
        syscall
        .bss
    buf: .space 32
    "
        ),
        b"ping",
    );
    assert_eq!(outcome, RunOutcome::Exited(4));
    assert_eq!(kernel.stdout(), b"ping");
}

#[test]
fn create_write_then_reopen() {
    let (outcome, kernel) = run(
        &format!(
            "{PRELUDE}
        .text
    main:
        movi r0, SYS_OPEN
        movi r1, path
        movi r2, 0x241        ; O_WRONLY|O_CREAT|O_TRUNC
        movi r3, 0x1b6
        syscall
        mov r4, r0
        movi r0, SYS_WRITE
        mov r1, r4
        movi r2, data
        movi r3, 5
        syscall
        movi r0, SYS_CLOSE
        mov r1, r4
        syscall
        movi r0, SYS_EXIT
        movi r1, 0
        syscall
        .rodata
    path: .asciz \"/tmp/out.txt\"
    data: .ascii \"12345\"
    "
        ),
        b"",
    );
    assert_eq!(outcome, RunOutcome::Exited(0));
    assert_eq!(kernel.fs().read_file("/tmp/out.txt").unwrap(), b"12345");
}

#[test]
fn mkdir_and_unlink() {
    let (outcome, kernel) = run(
        &format!(
            "{PRELUDE}
        .text
    main:
        movi r0, SYS_MKDIR
        movi r1, dirpath
        movi r2, 0x1ed
        syscall
        mov r6, r0
        movi r0, SYS_UNLINK
        movi r1, filepath
        syscall
        movi r0, SYS_EXIT
        mov r1, r6
        syscall
        .rodata
    dirpath: .asciz \"/tmp/newdir\"
    filepath: .asciz \"/etc/motd\"
    "
        ),
        b"",
    );
    assert_eq!(outcome, RunOutcome::Exited(0));
    assert!(kernel.fs().resolve("/tmp/newdir", "/").is_ok());
    assert!(kernel.fs().resolve("/etc/motd", "/").is_err());
}

#[test]
fn socket_loopback() {
    let (outcome, kernel) = run(
        &format!(
            "{PRELUDE}
        .text
    main:
        movi r0, SYS_SOCKET
        movi r1, 2
        movi r2, 1
        movi r3, 0
        syscall
        mov r4, r0
        movi r0, SYS_SENDTO
        mov r1, r4
        movi r2, msg
        movi r3, 4
        syscall
        movi r0, SYS_RECVFROM
        mov r1, r4
        movi r2, buf
        movi r3, 16
        syscall
        mov r5, r0
        movi r0, SYS_WRITE
        movi r1, 1
        movi r2, buf
        mov r3, r5
        syscall
        movi r0, SYS_EXIT
        movi r1, 0
        syscall
        .rodata
    msg: .ascii \"pong\"
        .bss
    buf: .space 16
    "
        ),
        b"",
    );
    assert_eq!(outcome, RunOutcome::Exited(0));
    assert_eq!(kernel.stdout(), b"pong");
}

#[test]
fn brk_extends_heap() {
    let (outcome, _) = run(
        &format!(
            "{PRELUDE}
        .text
    main:
        movi r0, SYS_BRK
        movi r1, 0
        syscall
        mov r4, r0            ; current brk
        addi r1, r4, 0x2000
        movi r0, SYS_BRK
        syscall
        stw [r4+0x1000], r4   ; touch newly mapped page
        ldw r5, [r4+0x1000]
        movi r0, SYS_EXIT
        movi r1, 0
        bne r4, r5, fail
        syscall
    fail:
        movi r1, 1
        syscall
    "
        ),
        b"",
    );
    assert_eq!(outcome, RunOutcome::Exited(0));
}

#[test]
fn getdents_lists_directory() {
    let (outcome, kernel) = run(
        &format!(
            "{PRELUDE}
        .text
    main:
        movi r0, SYS_OPEN
        movi r1, path
        movi r2, 0
        movi r3, 0
        syscall
        mov r4, r0
        movi r0, SYS_GETDENTS
        mov r1, r4
        movi r2, buf
        movi r3, 256
        syscall
        mov r5, r0
        movi r0, SYS_WRITE
        movi r1, 1
        movi r2, buf
        mov r3, r5
        syscall
        movi r0, SYS_EXIT
        movi r1, 0
        syscall
        .rodata
    path: .asciz \"/etc\"
        .bss
    buf: .space 256
    "
        ),
        b"",
    );
    assert_eq!(outcome, RunOutcome::Exited(0));
    let out = kernel.stdout();
    // Records: {len u32}{name}; /etc contains motd and passwd.
    let text = String::from_utf8_lossy(out);
    assert!(text.contains("motd"), "{text:?}");
    assert!(text.contains("passwd"), "{text:?}");
}

#[test]
fn unknown_syscall_returns_enosys_when_not_enforcing() {
    let (outcome, _) = run(
        "
        .text
    main:
        movi r0, 999
        syscall
        mov r2, r0
        movi r0, 1
        movi r1, 0
        movi r3, 0xffffffda   ; -38
        beq r2, r3, ok
        movi r1, 1
    ok:
        syscall
    ",
        b"",
    );
    assert_eq!(outcome, RunOutcome::Exited(0));
}

#[test]
fn bsd_personality_uses_different_numbers() {
    // Linux write=4; on OpenBSD 4 is also write, but kill differs: Linux 37
    // vs BSD 122. Calling 37 on BSD must not be kill.
    let binary = assemble(
        "
        .text
    main:
        movi r0, 122      ; BSD kill
        movi r1, 1
        movi r2, 0
        syscall
        mov r4, r0
        movi r0, 1
        mov r1, r4
        syscall
    ",
    )
    .unwrap();
    let mut kernel = Kernel::new(KernelOptions::plain(Personality::OpenBsd));
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(&binary, kernel).unwrap();
    let outcome = machine.run(1_000_000);
    assert_eq!(outcome, RunOutcome::Exited(0));
    let kernel = machine.into_handler();
    assert_eq!(kernel.trace()[0].id, SyscallId::Kill);
}

#[test]
fn bsd_indirect_syscall_resolves_to_mmap() {
    // __syscall(SYS_mmap=197, 0, 0x3000, ...) — the Table 2 quirk.
    let binary = assemble(
        "
        .text
    main:
        movi r0, 198      ; __syscall
        movi r1, 197      ; SYS_mmap
        movi r2, 0
        movi r3, 0x3000
        syscall
        mov r4, r0        ; mapped address
        stw [r4], r4      ; touch it
        movi r0, 1
        movi r1, 0
        syscall
    ",
    )
    .unwrap();
    let mut kernel = Kernel::new(KernelOptions::plain(Personality::OpenBsd));
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(&binary, kernel).unwrap();
    let outcome = machine.run(1_000_000);
    assert_eq!(outcome, RunOutcome::Exited(0));
    let kernel = machine.into_handler();
    // The trace records the *effective* call — what Systrace-style
    // training sees ("this indirection is hidden from users").
    assert_eq!(kernel.trace()[0].id, SyscallId::Mmap);
    assert_eq!(kernel.trace()[0].raw_nr, 198);
}

#[test]
fn syscall_costs_show_in_cycles() {
    // getpid is ~1100+40 cycles of kernel time; 100 getpids ≈ 114k cycles
    // plus loop overhead.
    let (outcome, _) = run(
        &format!(
            "{PRELUDE}
        .text
    main:
        movi r4, 0
        movi r5, 100
    loop:
        movi r0, SYS_GETPID
        syscall
        addi r4, r4, 1
        bne r4, r5, loop
        movi r0, SYS_EXIT
        movi r1, 0
        syscall
    "
        ),
        b"",
    );
    assert_eq!(outcome, RunOutcome::Exited(0));
}

#[test]
fn execve_records_request() {
    let (outcome, kernel) = run(
        "
        .text
    main:
        movi r0, 11
        movi r1, path
        movi r2, 0
        movi r3, 0
        syscall
        .rodata
    path: .asciz \"/bin/ls\"
    ",
        b"",
    );
    assert_eq!(outcome, RunOutcome::Exited(0));
    assert_eq!(kernel.exec_requests(), &["/bin/ls".to_string()]);
}

#[test]
fn symlinked_open_is_normalized() {
    let binary = assemble(
        "
        .text
    main:
        movi r0, 5
        movi r1, path
        movi r2, 0
        movi r3, 0
        syscall
        mov r4, r0
        movi r0, 3
        mov r1, r4
        movi r2, buf
        movi r3, 32
        syscall
        mov r5, r0
        movi r0, 4
        movi r1, 1
        movi r2, buf
        mov r3, r5
        syscall
        movi r0, 1
        movi r1, 0
        syscall
        .rodata
    path: .asciz \"/tmp/link-to-motd\"
        .bss
    buf: .space 32
    ",
    )
    .unwrap();
    let mut kernel = Kernel::new(KernelOptions::plain(Personality::Linux));
    kernel
        .fs_mut()
        .symlink("/etc/motd", "/tmp/link-to-motd", "/")
        .unwrap();
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(&binary, kernel).unwrap();
    let outcome = machine.run(1_000_000);
    assert_eq!(outcome, RunOutcome::Exited(0));
    assert_eq!(machine.into_handler().stdout(), b"welcome to svm32\n");
}
