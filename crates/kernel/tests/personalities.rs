//! Personality-divergence tests: the OS-specific behaviours that drive
//! the paper's cross-OS policy results.

use asc_asm::assemble;
use asc_kernel::{Kernel, KernelOptions, Personality, SyscallId};
use asc_vm::{Machine, RunOutcome};

fn run_on(src: &str, personality: Personality) -> (RunOutcome, Kernel) {
    let binary = assemble(src).expect("assembles");
    let mut kernel = Kernel::new(KernelOptions::plain(personality));
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(&binary, kernel).expect("loads");
    let outcome = machine.run(10_000_000);
    (outcome, machine.into_handler())
}

#[test]
fn sysconf_is_a_syscall_only_on_openbsd() {
    let src = "
        .text
        .entry main
    main:
        movi r0, 161          ; OpenBSD sysconf nr
        movi r1, 0            ; _SC_PAGESIZE
        syscall
        mov r1, r0
        movi r0, 1
        syscall
    ";
    let (outcome, kernel) = run_on(src, Personality::OpenBsd);
    assert_eq!(outcome, RunOutcome::Exited(4096));
    assert_eq!(kernel.trace()[0].id, SyscallId::Sysconf);
    // The same number on Linux is not a syscall -> ENOSYS.
    let (outcome, _) = run_on(src, Personality::Linux);
    assert_eq!(outcome, RunOutcome::Exited((-38i32) as u32));
}

#[test]
fn alarm_nice_pause_are_libc_functions_on_openbsd() {
    // Their Linux numbers mean nothing (or something else) on OpenBSD.
    for id in [SyscallId::Alarm, SyscallId::Nice, SyscallId::Pause] {
        assert!(
            Personality::Linux.nr(id).is_some(),
            "{id:?} is a Linux syscall"
        );
        assert!(
            Personality::OpenBsd.nr(id).is_none(),
            "{id:?} is OpenBSD libc"
        );
    }
}

#[test]
fn same_number_different_call() {
    // Number 38 is rename on Linux but stat on OpenBSD — using a policy
    // across operating systems would permit the wrong call (Table 1's
    // portability point).
    assert_eq!(Personality::Linux.name_of(38), "rename");
    assert_eq!(Personality::OpenBsd.name_of(38), "stat");
    // And exercised at runtime:
    let src = "
        .text
        .entry main
    main:
        movi r0, 38
        movi r1, p
        movi r2, st
        syscall
        mov r1, r0
        movi r0, 1
        syscall
        .rodata
    p: .asciz \"/etc/motd\"
        .bss
    st: .space 16
    ";
    let (outcome, kernel) = run_on(src, Personality::OpenBsd);
    assert_eq!(outcome, RunOutcome::Exited(0), "stat succeeds");
    assert_eq!(kernel.trace()[0].id, SyscallId::Stat);
    let (outcome, kernel) = run_on(src, Personality::Linux);
    // rename("/etc/motd", <stat buffer as path>) fails on path parsing.
    assert_ne!(outcome, RunOutcome::Exited(0));
    assert_eq!(kernel.trace()[0].id, SyscallId::Rename);
}

#[test]
fn double_indirection_is_rejected() {
    // __syscall(__syscall, ...) must not recurse.
    let src = "
        .text
        .entry main
    main:
        movi r0, 198
        movi r1, 198
        syscall
        mov r1, r0
        movi r0, 1
        syscall
    ";
    let (outcome, _) = run_on(src, Personality::OpenBsd);
    assert_eq!(outcome, RunOutcome::Exited((-38i32) as u32)); // ENOSYS
}

#[test]
fn uname_sysname_differs() {
    let src = "
        .text
        .entry main
    main:
        movi r0, NR
        movi r1, buf
        syscall
        movi r12, buf
        ldb r1, [r12+3]       ; 4th byte: 'L' in SVMLinux, 'B' in SVMBSD
        movi r0, 1
        syscall
        .bss
    buf: .space 32
    ";
    let linux = src.replace("NR", "122");
    let bsd = src.replace("NR", "164");
    assert_eq!(
        run_on(&linux, Personality::Linux).0,
        RunOutcome::Exited(b'L' as u32)
    );
    assert_eq!(
        run_on(&bsd, Personality::OpenBsd).0,
        RunOutcome::Exited(b'B' as u32)
    );
}

#[test]
fn bsd_close_quirk_still_works_at_runtime() {
    // The un-disassemblable close stub must still *run* correctly (the
    // quirk defeats static analysis, not execution).
    let spec = asc_workloads::program("bison").expect("registered");
    let binary = asc_workloads::build(spec, Personality::OpenBsd).expect("builds");
    let (outcome, kernel) = asc_workloads::run_plain(spec, &binary, Personality::OpenBsd);
    assert!(outcome.is_success());
    assert!(
        kernel.trace().iter().any(|t| t.id == SyscallId::Close),
        "close executed at runtime despite being invisible to analysis"
    );
}
