//! Focused semantics tests for individual system calls, driven by small
//! assembly guests (the kernel is only reachable through the trap path).

use asc_asm::assemble;
use asc_kernel::{Kernel, KernelOptions, Personality};
use asc_vm::{Machine, RunOutcome};

fn run_with(src: &str, stdin: &[u8], prep: impl FnOnce(&mut Kernel)) -> (RunOutcome, Kernel) {
    let binary = assemble(src).expect("assembles");
    let mut kernel = Kernel::new(KernelOptions::plain(Personality::Linux));
    kernel.set_stdin(stdin.to_vec());
    kernel.set_brk(binary.highest_addr());
    prep(&mut kernel);
    let mut machine = Machine::load(&binary, kernel).expect("loads");
    let outcome = machine.run(50_000_000);
    (outcome, machine.into_handler())
}

fn run(src: &str) -> (RunOutcome, Kernel) {
    run_with(src, b"", |_| {})
}

/// Exit with the value of an expression computed in r1.
fn exit_with(body: &str, extra_sections: &str) -> String {
    format!(
        "
        .text
        .entry main
    main:
        {body}
        movi r0, 1
        syscall
        {extra_sections}
    "
    )
}

#[test]
fn lseek_whence_modes() {
    // Write 10 bytes, then SEEK_SET 4 / SEEK_CUR +2 / SEEK_END -1.
    let src = exit_with(
        "
        movi r0, 5
        movi r1, path
        movi r2, 0x241
        movi r3, 0x1b6
        syscall
        mov r6, r0
        movi r0, 4
        mov r1, r6
        movi r2, data
        movi r3, 10
        syscall
        ; SEEK_SET 4
        movi r0, 19
        mov r1, r6
        movi r2, 4
        movi r3, 0
        syscall
        mov r4, r0            ; 4
        ; SEEK_CUR +2
        movi r0, 19
        mov r1, r6
        movi r2, 2
        movi r3, 1
        syscall
        shli r4, r4, 8
        or r4, r4, r0         ; 4<<8 | 6
        ; SEEK_END -1
        movi r0, 19
        mov r1, r6
        movi r2, 0xffffffff
        movi r3, 2
        syscall
        shli r4, r4, 8
        or r1, r4, r0         ; | 9
        ",
        "
        .rodata
    path: .asciz \"/tmp/f\"
    data: .ascii \"0123456789\"
    ",
    );
    let (outcome, _) = run(&src);
    assert_eq!(outcome, RunOutcome::Exited((4 << 16) | (6 << 8) | 9));
}

#[test]
fn dup2_redirects() {
    // dup2(fd, 7) then write via 7.
    let src = exit_with(
        "
        movi r0, 5
        movi r1, path
        movi r2, 0x241
        movi r3, 0x1b6
        syscall
        mov r6, r0
        movi r0, 63            ; dup2
        mov r1, r6
        movi r2, 7
        syscall
        movi r0, 4
        movi r1, 7
        movi r2, msg
        movi r3, 3
        syscall
        movi r1, 0
        ",
        "
        .rodata
    path: .asciz \"/tmp/d\"
    msg: .ascii \"abc\"
    ",
    );
    let (outcome, kernel) = run(&src);
    assert_eq!(outcome, RunOutcome::Exited(0));
    assert_eq!(kernel.fs().read_file("/tmp/d").unwrap(), b"abc");
}

#[test]
fn writev_gathers() {
    let src = exit_with(
        "
        movi r12, iov
        movi r5, a
        stw [r12], r5
        movi r5, 3
        stw [r12+4], r5
        movi r5, b
        stw [r12+8], r5
        movi r5, 4
        stw [r12+12], r5
        movi r0, 146          ; writev(1, iov, 2)
        movi r1, 1
        mov r2, r12
        movi r3, 2
        syscall
        mov r1, r0            ; total bytes
        ",
        "
        .rodata
    a: .ascii \"one\"
    b: .ascii \"/two\"
        .bss
    iov: .space 16
    ",
    );
    let (outcome, kernel) = run(&src);
    assert_eq!(outcome, RunOutcome::Exited(7));
    assert_eq!(kernel.stdout(), b"one/two");
}

#[test]
fn pipe_roundtrip() {
    let src = exit_with(
        "
        movi r0, 42            ; pipe(fds)
        movi r1, fds
        syscall
        movi r12, fds
        ldw r4, [r12]          ; read end
        ldw r5, [r12+4]        ; write end
        movi r0, 4
        mov r1, r5
        movi r2, msg
        movi r3, 5
        syscall
        movi r0, 3
        mov r1, r4
        movi r2, buf
        movi r3, 16
        syscall
        mov r6, r0             ; bytes read
        movi r0, 4             ; echo to stdout
        movi r1, 1
        movi r2, buf
        mov r3, r6
        syscall
        mov r1, r6
        ",
        "
        .rodata
    msg: .ascii \"piped\"
        .bss
    fds: .space 8
    buf: .space 16
    ",
    );
    let (outcome, kernel) = run(&src);
    assert_eq!(outcome, RunOutcome::Exited(5));
    assert_eq!(kernel.stdout(), b"piped");
}

#[test]
fn truncate_and_ftruncate() {
    let src = exit_with(
        "
        movi r0, 5
        movi r1, path
        movi r2, 0x241
        movi r3, 0x1b6
        syscall
        mov r6, r0
        movi r0, 4
        mov r1, r6
        movi r2, msg
        movi r3, 8
        syscall
        movi r0, 93            ; ftruncate(fd, 3)
        mov r1, r6
        movi r2, 3
        syscall
        movi r1, 0
        ",
        "
        .rodata
    path: .asciz \"/tmp/t\"
    msg: .ascii \"12345678\"
    ",
    );
    let (outcome, kernel) = run(&src);
    assert_eq!(outcome, RunOutcome::Exited(0));
    assert_eq!(kernel.fs().read_file("/tmp/t").unwrap(), b"123");
}

#[test]
fn readlink_returns_target() {
    let src = exit_with(
        "
        movi r0, 85
        movi r1, lnk
        movi r2, buf
        movi r3, 32
        syscall
        mov r6, r0
        movi r0, 4
        movi r1, 1
        movi r2, buf
        mov r3, r6
        syscall
        mov r1, r6
        ",
        "
        .rodata
    lnk: .asciz \"/tmp/mylink\"
        .bss
    buf: .space 32
    ",
    );
    let (outcome, kernel) = run_with(&src, b"", |k| {
        k.fs_mut().symlink("/etc/motd", "/tmp/mylink", "/").unwrap();
    });
    assert_eq!(outcome, RunOutcome::Exited(9));
    assert_eq!(kernel.stdout(), b"/etc/motd");
}

#[test]
fn stat_reports_kind_and_size() {
    // stat("/etc/motd"): kind 0 (file), size 17.
    let src = exit_with(
        "
        movi r0, 106
        movi r1, path
        movi r2, st
        syscall
        movi r12, st
        ldw r4, [r12]          ; kind
        ldw r5, [r12+4]        ; size
        shli r4, r4, 8
        or r1, r4, r5
        ",
        "
        .rodata
    path: .asciz \"/etc/motd\"
        .bss
    st: .space 16
    ",
    );
    let (outcome, _) = run(&src);
    assert_eq!(outcome, RunOutcome::Exited(17)); // kind 0 << 8 | 17
}

#[test]
fn nanosleep_advances_time() {
    // gettimeofday, nanosleep 3s, gettimeofday: delta >= 3.
    let src = exit_with(
        "
        movi r0, 78
        movi r1, tv
        movi r2, 0
        syscall
        movi r12, tv
        ldw r4, [r12]          ; secs before
        movi r12, req
        movi r5, 3
        stw [r12], r5
        movi r5, 0
        stw [r12+4], r5
        movi r0, 162           ; nanosleep
        movi r1, req
        movi r2, 0
        syscall
        movi r0, 78
        movi r1, tv
        movi r2, 0
        syscall
        movi r12, tv
        ldw r5, [r12]          ; secs after
        sub r1, r5, r4
        ",
        "
        .bss
    tv: .space 8
    req: .space 8
    ",
    );
    let (outcome, _) = run(&src);
    assert_eq!(outcome, RunOutcome::Exited(3));
}

#[test]
fn uname_identifies_personality() {
    let src = exit_with(
        "
        movi r0, 122
        movi r1, buf
        syscall
        movi r12, buf
        ldb r1, [r12]          ; first byte of sysname
        ",
        "
        .bss
    buf: .space 32
    ",
    );
    let (outcome, _) = run(&src);
    assert_eq!(outcome, RunOutcome::Exited(b'S' as u32)); // "SVMLinux"
}

#[test]
fn bad_fd_operations_return_ebadf() {
    let src = exit_with(
        "
        movi r0, 3             ; read(99, ...)
        movi r1, 99
        movi r2, buf
        movi r3, 4
        syscall
        mov r1, r0
        ",
        "
        .bss
    buf: .space 4
    ",
    );
    let (outcome, _) = run(&src);
    assert_eq!(outcome, RunOutcome::Exited((-9i32) as u32));
}

#[test]
fn open_missing_without_creat_fails() {
    let src = exit_with(
        "
        movi r0, 5
        movi r1, path
        movi r2, 0
        movi r3, 0
        syscall
        mov r1, r0
        ",
        "
        .rodata
    path: .asciz \"/no/such/file\"
    ",
    );
    let (outcome, _) = run(&src);
    assert_eq!(outcome, RunOutcome::Exited((-2i32) as u32)); // ENOENT
}

#[test]
fn append_mode_appends() {
    let src = exit_with(
        "
        movi r0, 5
        movi r1, path
        movi r2, 0x441         ; O_WRONLY|O_CREAT|O_APPEND
        movi r3, 0x1b6
        syscall
        mov r6, r0
        movi r0, 4
        mov r1, r6
        movi r2, msg
        movi r3, 2
        syscall
        movi r1, 0
        ",
        "
        .rodata
    path: .asciz \"/tmp/log\"
    msg: .ascii \"+x\"
    ",
    );
    let (outcome, kernel) = run_with(&src, b"", |k| {
        k.fs_mut().write_file("/tmp/log", b"old".to_vec()).unwrap();
    });
    assert_eq!(outcome, RunOutcome::Exited(0));
    assert_eq!(kernel.fs().read_file("/tmp/log").unwrap(), b"old+x");
}

#[test]
fn chdir_affects_relative_paths() {
    let src = exit_with(
        "
        movi r0, 12            ; chdir(\"/etc\")
        movi r1, dir
        syscall
        movi r0, 5             ; open(\"motd\") — relative
        movi r1, rel
        movi r2, 0
        movi r3, 0
        syscall
        mov r6, r0
        movi r0, 3
        mov r1, r6
        movi r2, buf
        movi r3, 7
        syscall
        mov r1, r0
        ",
        "
        .rodata
    dir: .asciz \"/etc\"
    rel: .asciz \"motd\"
        .bss
    buf: .space 8
    ",
    );
    let (outcome, _) = run(&src);
    assert_eq!(outcome, RunOutcome::Exited(7));
}

#[test]
fn mmap_returns_usable_memory() {
    let src = exit_with(
        "
        movi r0, 90            ; mmap(0, 0x2000, ...)
        movi r1, 0
        movi r2, 0x2000
        movi r3, 3
        movi r4, 2
        syscall
        mov r6, r0
        movi r5, 0xabcd
        stw [r6+0x1ffc], r5
        ldw r4, [r6+0x1ffc]
        sub r1, r4, r5         ; 0 when readback matches
        ",
        "",
    );
    let (outcome, _) = run(&src);
    assert_eq!(outcome, RunOutcome::Exited(0));
}

#[test]
fn sockets_queue_per_descriptor() {
    // Two sockets: data sent on one must not arrive on the other.
    let src = exit_with(
        "
        movi r0, 102
        movi r1, 2
        movi r2, 1
        movi r3, 0
        syscall
        mov r6, r0             ; sock A
        movi r0, 102
        movi r1, 2
        movi r2, 1
        movi r3, 0
        syscall
        mov r5, r0             ; sock B
        movi r0, 109           ; sendto(A, msg, 4)
        mov r1, r6
        movi r2, msg
        movi r3, 4
        syscall
        movi r0, 110           ; recvfrom(B, buf, 8) -> 0 bytes
        mov r1, r5
        movi r2, buf
        movi r3, 8
        syscall
        mov r4, r0
        movi r0, 110           ; recvfrom(A, buf, 8) -> 4 bytes
        mov r1, r6
        movi r2, buf
        movi r3, 8
        syscall
        shli r1, r4, 8
        or r1, r1, r0          ; 0 << 8 | 4
        ",
        "
        .rodata
    msg: .ascii \"ping\"
        .bss
    buf: .space 8
    ",
    );
    let (outcome, _) = run(&src);
    assert_eq!(outcome, RunOutcome::Exited(4));
}
