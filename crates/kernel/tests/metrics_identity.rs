//! The metrics reconstruction identities and the no-perturbation rule.
//!
//! With a registry attached, the trap handler's histograms must
//! *reconstruct* the `KernelStats` aggregates exactly:
//!
//! * `Σ_path asc_verify_cycles.sum == KernelStats::verify_cycles`
//! * `Σ_path asc_verify_aes_blocks.sum == KernelStats::verify_aes_blocks`
//! * `Σ_family asc_check_aes_blocks.sum == KernelStats::verify_aes_blocks`
//!   (the `CallMeter` per-check partition is exact)
//! * `Σ_family asc_check_cycles.sum + Σ_path asc_verify_fixed_cycles.sum
//!   == KernelStats::verify_cycles` (the cost model is linear)
//!
//! And attaching the registry must change *nothing* the run can observe:
//! same cycles, same stats, same output — metrics observe costs, they do
//! not incur them.

use asc_crypto::MacKey;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{Kernel, KernelOptions, KernelStats, Personality, VERIFY_PATHS};
use asc_metrics::Snapshot;
use asc_vm::Machine;

const PERSONALITY: Personality = Personality::Linux;

/// Syscall-heavy guest: repeated identical calls (cache-warmable) plus
/// varied one-shot calls, so all of cold/warm and several check families
/// appear in the histograms.
const GUEST: &str = r#"
fn main() {
    var i = 0;
    while (i < 12) {
        getpid();
        write(1, "x", 1);
        i = i + 1;
    }
    let fd = open("/etc/motd", 0, 0);
    close(fd);
    getuid();
    geteuid();
    return 0;
}
"#;

struct Run {
    stats: KernelStats,
    cycles: u64,
    stdout: Vec<u8>,
    snapshot: Option<Snapshot>,
}

fn run(auth: &asc_object::Binary, key: &MacKey, cached: bool, metrics: bool) -> Run {
    let opts = if cached {
        KernelOptions::enforcing(PERSONALITY).with_verify_cache()
    } else {
        KernelOptions::enforcing(PERSONALITY)
    };
    let mut kernel = Kernel::new(opts);
    kernel.set_key(key.clone());
    kernel.set_brk(auth.highest_addr());
    if metrics {
        kernel.attach_metrics();
    }
    let mut machine = Machine::load(auth, kernel).expect("guest binary fits in memory");
    let outcome = machine.run(100_000_000);
    let cycles = machine.cycles();
    let mut kernel = machine.into_handler();
    assert!(
        outcome.is_success(),
        "guest failed: {outcome:?} (alerts: {:?})",
        kernel.alerts()
    );
    Run {
        stats: *kernel.stats(),
        cycles,
        stdout: kernel.stdout().to_vec(),
        snapshot: kernel.take_metrics().map(|m| m.snapshot()),
    }
}

fn build() -> (asc_object::Binary, MacKey) {
    let key = MacKey::from_seed(0x3E7_21C5);
    let plain = asc_workloads::build_source(GUEST, PERSONALITY).expect("guest builds");
    let installer = Installer::new(
        key.clone(),
        InstallerOptions::new(PERSONALITY).with_program_id(9),
    );
    let (auth, _) = installer.install(&plain, "metricsguest").expect("installs");
    (auth, key)
}

fn assert_identities(run: &Run, label: &str) {
    let snap = run.snapshot.as_ref().expect("metrics attached");
    let stats = &run.stats;

    assert_eq!(
        snap.histogram_sum_across_labels("asc_verify_cycles"),
        stats.verify_cycles,
        "{label}: Σ_path verify-cycle histogram sums != KernelStats.verify_cycles"
    );
    assert_eq!(
        snap.histogram_sum_across_labels("asc_verify_aes_blocks"),
        stats.verify_aes_blocks,
        "{label}: Σ_path AES-block histogram sums != KernelStats.verify_aes_blocks"
    );
    assert_eq!(
        snap.histogram_sum_across_labels("asc_check_aes_blocks"),
        stats.verify_aes_blocks,
        "{label}: Σ_family per-check AES blocks != KernelStats.verify_aes_blocks"
    );
    assert_eq!(
        snap.histogram_sum_across_labels("asc_check_cycles")
            + snap.histogram_sum_across_labels("asc_verify_fixed_cycles"),
        stats.verify_cycles,
        "{label}: per-check cycles + fixed cycles != KernelStats.verify_cycles"
    );

    // Per-path counts partition the verified calls.
    let calls: u64 = VERIFY_PATHS
        .iter()
        .filter_map(|p| snap.histogram("asc_verify_cycles", &[("path", p)]))
        .map(|h| h.count())
        .sum();
    assert_eq!(calls, stats.verified, "{label}: path counts != verified");
    let warm = snap
        .histogram("asc_verify_cycles", &[("path", "warm")])
        .map(|h| (h.count(), h.sum()))
        .unwrap_or((0, 0));
    assert_eq!(
        warm.0, stats.cache_hits,
        "{label}: warm count != cache hits"
    );
    assert_eq!(
        warm.1, stats.warm_verify_cycles,
        "{label}: warm cycle sum != warm_verify_cycles"
    );

    // Counters.
    assert_eq!(
        snap.counter("asc_syscalls_total", &[]),
        Some(stats.syscalls),
        "{label}"
    );
    assert_eq!(snap.counter("asc_kills_total", &[]), Some(0), "{label}");
}

#[test]
fn histograms_reconstruct_kernel_stats_exactly() {
    let (auth, key) = build();
    for cached in [false, true] {
        let run = run(&auth, &key, cached, true);
        assert!(run.stats.verified > 0, "guest made verified calls");
        if cached {
            assert!(run.stats.cache_hits > 0, "repeat calls warm the cache");
        }
        assert_identities(&run, if cached { "cached" } else { "cold" });
    }
}

#[test]
fn cache_outcome_counters_track_paths() {
    let (auth, key) = build();
    let run = run(&auth, &key, true, true);
    let snap = run.snapshot.as_ref().expect("metrics attached");
    assert_eq!(
        snap.counter("asc_cache_outcome_total", &[("outcome", "warm")]),
        Some(run.stats.cache_hits)
    );
    let outcomes: u64 = VERIFY_PATHS
        .iter()
        .filter_map(|p| snap.counter("asc_cache_outcome_total", &[("outcome", p)]))
        .sum();
    assert_eq!(
        outcomes, run.stats.verified,
        "every verified call gets exactly one cache outcome"
    );
    // Without a cache, no outcome is recorded at all.
    let cold = run_without_cache(&auth, &key);
    let outcomes: u64 = VERIFY_PATHS
        .iter()
        .filter_map(|p| cold.counter("asc_cache_outcome_total", &[("outcome", p)]))
        .sum();
    assert_eq!(outcomes, 0, "cache outcomes recorded with the cache off");
}

fn run_without_cache(auth: &asc_object::Binary, key: &MacKey) -> Snapshot {
    run(auth, key, false, true)
        .snapshot
        .expect("metrics attached")
}

#[test]
fn attaching_metrics_perturbs_nothing() {
    let (auth, key) = build();
    for cached in [false, true] {
        let bare = run(&auth, &key, cached, false);
        let metered = run(&auth, &key, cached, true);
        assert_eq!(
            bare.cycles, metered.cycles,
            "cached={cached}: metrics changed charged cycles"
        );
        assert_eq!(
            format!("{:?}", bare.stats),
            format!("{:?}", metered.stats),
            "cached={cached}: metrics changed KernelStats"
        );
        assert_eq!(
            bare.stdout, metered.stdout,
            "cached={cached}: metrics changed program output"
        );
    }
}

#[test]
fn snapshots_merge_across_kernels_like_one_kernel() {
    // Run the guest twice on separate kernels (the Andrew pattern) and
    // merge the snapshots; sums must equal the absorbed KernelStats.
    let (auth, key) = build();
    let a = run(&auth, &key, true, true);
    let b = run(&auth, &key, false, true);
    let mut stats = a.stats;
    stats.absorb(&b.stats);
    let mut merged = a.snapshot.expect("metrics attached");
    merged.merge(&b.snapshot.expect("metrics attached"));
    assert_eq!(
        merged.histogram_sum_across_labels("asc_verify_cycles"),
        stats.verify_cycles
    );
    assert_eq!(
        merged.histogram_sum_across_labels("asc_verify_aes_blocks"),
        stats.verify_aes_blocks
    );
    assert_eq!(
        merged.counter("asc_syscalls_total", &[]),
        Some(stats.syscalls)
    );
}
