//! Model-based property test for the in-memory filesystem: a random
//! sequence of operations applied both to the real [`FileSystem`] and to a
//! trivial path→contents model must agree on observable state.

use std::collections::BTreeMap;

use asc_kernel::{FileSystem, FsError};
use asc_testkit::Rng;

#[derive(Clone, Debug)]
enum Op {
    WriteFile(u8, Vec<u8>),
    Mkdir(u8),
    Unlink(u8),
    Rename(u8, u8),
    Link(u8, u8),
}

fn file_name(i: u8) -> String {
    format!("/tmp/f{}", i % 8)
}

fn dir_name(i: u8) -> String {
    format!("/tmp/d{}", i % 4)
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.range_u32(0, 5) {
        0 => Op::WriteFile(rng.byte(), rng.bytes(0, 32)),
        1 => Op::Mkdir(rng.byte()),
        2 => Op::Unlink(rng.byte()),
        3 => Op::Rename(rng.byte(), rng.byte()),
        _ => Op::Link(rng.byte(), rng.byte()),
    }
}

#[test]
fn filesystem_agrees_with_model() {
    asc_testkit::check(0xf5_0de1, 64, |rng| {
        let ops: Vec<Op> = (0..rng.range_usize(0, 60))
            .map(|_| random_op(rng))
            .collect();
        let mut fs = FileSystem::new();
        // Model: file path -> "slot" id; slot id -> contents (hard links
        // share a slot).
        let mut links: BTreeMap<String, usize> = BTreeMap::new();
        let mut slots: Vec<Vec<u8>> = Vec::new();
        let mut dirs: Vec<String> = Vec::new();

        for op in &ops {
            match op {
                Op::WriteFile(i, data) => {
                    let path = file_name(*i);
                    match fs.write_file(&path, data.clone()) {
                        Ok(_) => match links.get(&path) {
                            Some(&slot) => slots[slot] = data.clone(),
                            None => {
                                slots.push(data.clone());
                                links.insert(path, slots.len() - 1);
                            }
                        },
                        Err(e) => assert!(
                            matches!(e, FsError::IsADirectory),
                            "unexpected write_file error {e:?}"
                        ),
                    }
                }
                Op::Mkdir(i) => {
                    let path = dir_name(*i);
                    let expected_ok = !dirs.contains(&path);
                    let got = fs.mkdir(&path, 0o755);
                    assert_eq!(got.is_ok(), expected_ok);
                    if expected_ok {
                        dirs.push(path);
                    }
                }
                Op::Unlink(i) => {
                    let path = file_name(*i);
                    let expected_ok = links.contains_key(&path);
                    let got = fs.unlink(&path, "/");
                    assert_eq!(got.is_ok(), expected_ok, "unlink {path}");
                    links.remove(&path);
                }
                Op::Rename(a, b) => {
                    let from = file_name(*a);
                    let to = file_name(*b);
                    if from == to {
                        continue; // rename-to-self: semantics uninteresting
                    }
                    let expected_ok = links.contains_key(&from);
                    let got = fs.rename(&from, &to, "/");
                    assert_eq!(got.is_ok(), expected_ok);
                    if expected_ok {
                        let slot = links.remove(&from).expect("checked");
                        links.insert(to, slot);
                    }
                }
                Op::Link(a, b) => {
                    let from = file_name(*a);
                    let to = file_name(*b);
                    let expected_ok =
                        links.contains_key(&from) && !links.contains_key(&to) && from != to;
                    let got = fs.link(&from, &to, "/");
                    assert_eq!(got.is_ok(), expected_ok, "link {from} {to}");
                    if expected_ok {
                        let slot = links[&from];
                        links.insert(to, slot);
                    }
                }
            }
        }

        // Final agreement on every possible name.
        for i in 0..8u8 {
            let path = file_name(i);
            match links.get(&path) {
                Some(&slot) => {
                    assert_eq!(
                        fs.read_file(&path).expect("model says exists"),
                        &slots[slot][..],
                        "{path}"
                    );
                }
                None => assert!(fs.read_file(&path).is_err(), "{path} should be gone"),
            }
        }
        for d in &dirs {
            assert!(fs.resolve(d, "/").is_ok());
        }
    });
}
