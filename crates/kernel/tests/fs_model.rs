//! Model-based property test for the in-memory filesystem: a random
//! sequence of operations applied both to the real [`FileSystem`] and to a
//! trivial path→contents model must agree on observable state.

use std::collections::BTreeMap;

use asc_kernel::{FileSystem, FsError};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    WriteFile(u8, Vec<u8>),
    Mkdir(u8),
    Unlink(u8),
    Rename(u8, u8),
    Link(u8, u8),
}

fn file_name(i: u8) -> String {
    format!("/tmp/f{}", i % 8)
}

fn dir_name(i: u8) -> String {
    format!("/tmp/d{}", i % 4)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(i, d)| Op::WriteFile(i, d)),
        any::<u8>().prop_map(Op::Mkdir),
        any::<u8>().prop_map(Op::Unlink),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Rename(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Link(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn filesystem_agrees_with_model(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut fs = FileSystem::new();
        // Model: file path -> "slot" id; slot id -> contents (hard links
        // share a slot).
        let mut links: BTreeMap<String, usize> = BTreeMap::new();
        let mut slots: Vec<Vec<u8>> = Vec::new();
        let mut dirs: Vec<String> = Vec::new();

        for op in &ops {
            match op {
                Op::WriteFile(i, data) => {
                    let path = file_name(*i);
                    match fs.write_file(&path, data.clone()) {
                        Ok(_) => {
                            match links.get(&path) {
                                Some(&slot) => slots[slot] = data.clone(),
                                None => {
                                    slots.push(data.clone());
                                    links.insert(path, slots.len() - 1);
                                }
                            }
                        }
                        Err(e) => prop_assert!(
                            matches!(e, FsError::IsADirectory),
                            "unexpected write_file error {e:?}"
                        ),
                    }
                }
                Op::Mkdir(i) => {
                    let path = dir_name(*i);
                    let expected_ok = !dirs.contains(&path);
                    let got = fs.mkdir(&path, 0o755);
                    prop_assert_eq!(got.is_ok(), expected_ok);
                    if expected_ok {
                        dirs.push(path);
                    }
                }
                Op::Unlink(i) => {
                    let path = file_name(*i);
                    let expected_ok = links.contains_key(&path);
                    let got = fs.unlink(&path, "/");
                    prop_assert_eq!(got.is_ok(), expected_ok, "unlink {}", path);
                    links.remove(&path);
                }
                Op::Rename(a, b) => {
                    let from = file_name(*a);
                    let to = file_name(*b);
                    if from == to {
                        continue; // rename-to-self: semantics uninteresting
                    }
                    let expected_ok = links.contains_key(&from);
                    let got = fs.rename(&from, &to, "/");
                    prop_assert_eq!(got.is_ok(), expected_ok);
                    if expected_ok {
                        let slot = links.remove(&from).expect("checked");
                        links.insert(to, slot);
                    }
                }
                Op::Link(a, b) => {
                    let from = file_name(*a);
                    let to = file_name(*b);
                    let expected_ok =
                        links.contains_key(&from) && !links.contains_key(&to) && from != to;
                    let got = fs.link(&from, &to, "/");
                    prop_assert_eq!(got.is_ok(), expected_ok, "link {} {}", from, to);
                    if expected_ok {
                        let slot = links[&from];
                        links.insert(to, slot);
                    }
                }
            }
        }

        // Final agreement on every possible name.
        for i in 0..8u8 {
            let path = file_name(i);
            match links.get(&path) {
                Some(&slot) => {
                    prop_assert_eq!(fs.read_file(&path).expect("model says exists"),
                                    &slots[slot][..], "{}", path);
                }
                None => prop_assert!(fs.read_file(&path).is_err(), "{} should be gone", path),
            }
        }
        for d in &dirs {
            prop_assert!(fs.resolve(d, "/").is_ok());
        }
    }
}
