//! The trap handler's origin-privilege check, exercised straight against
//! the kernel: with a site registry installed, a trap from any pc outside
//! it is a fail-stop kill *before* the flow pre-filter and the MAC suite —
//! no side effects, no trace entry, no AES work — while a registered pc
//! passes the probe silently and proceeds to the ordinary verification
//! path. Misconfiguration (a flow tier with no digraph) is also a kill,
//! never a panic or a silent pass.

use asc_asm::assemble;
use asc_kernel::{Kernel, KernelOptions, Personality, ReasonCode, SiteRegistry, VerifyTier};
use asc_vm::{Machine, RunOutcome};

const GUEST: &str = "
    .text
main:
    movi r0, 4          ; SYS_WRITE
    movi r1, 1
    movi r2, msg
    movi r3, 6
    syscall
    movi r0, 1          ; SYS_EXIT
    movi r1, 0
    syscall
    .rodata
msg: .ascii \"hello\\n\"
";

fn key() -> asc_crypto::MacKey {
    asc_crypto::MacKey::from_seed(0x0819_0C0C)
}

/// The guest's actual trap pcs, learned from a plain run.
fn trap_pcs() -> Vec<u32> {
    let binary = assemble(GUEST).expect("assembles");
    let mut kernel = Kernel::new(KernelOptions::plain(Personality::Linux));
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(&binary, kernel).expect("loads");
    assert_eq!(machine.run(1_000_000), RunOutcome::Exited(0));
    machine
        .into_handler()
        .trace()
        .iter()
        .map(|t| t.site)
        .collect()
}

fn run_enforcing(tier: VerifyTier, registry: SiteRegistry) -> (RunOutcome, Kernel) {
    let binary = assemble(GUEST).expect("assembles");
    let mut kernel = Kernel::new(KernelOptions::enforcing(Personality::Linux).with_tier(tier));
    kernel.set_key(key());
    kernel.set_site_registry(registry);
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(&binary, kernel).expect("loads");
    let outcome = machine.run(1_000_000);
    (outcome, machine.into_handler())
}

/// An unregistered trap dies as `unrewritten-site` under every tier,
/// before the verifier spends a single AES block and before the call
/// has any effect.
#[test]
fn unregistered_trap_fail_stops_before_the_mac_path() {
    let pcs = trap_pcs();
    for &tier in &VerifyTier::ALL {
        let (outcome, kernel) = run_enforcing(tier, SiteRegistry::new());
        assert!(
            matches!(outcome, RunOutcome::Killed(_)),
            "{}: {outcome:?}",
            tier.name()
        );
        let alert = kernel.alerts().last().expect("kill alerts").clone();
        assert_eq!(alert.reason(), ReasonCode::UnrewrittenSite, "{alert}");
        let rendered = alert.to_string();
        assert!(
            rendered.contains("origin violation: trap from unrewritten site"),
            "{rendered}"
        );
        assert!(
            rendered.contains(&format!("{:#x}", pcs[0])),
            "kill names the offending pc: {rendered}"
        );
        assert!(kernel.stdout().is_empty(), "the write went through");
        assert!(kernel.trace().is_empty(), "a call was dispatched");
        assert_eq!(kernel.stats().verified, 0, "AES work was spent");
        assert_eq!(kernel.stats().verify_aes_blocks, 0);
        assert_eq!(kernel.stats().syscalls, 1, "exactly the killing trap");
    }
}

/// A registered pc passes the origin probe silently: the very same
/// unauthenticated guest then reaches the verification path and dies
/// *there* (fetching the call descriptor the installer never emitted) —
/// proof of the check ordering, and that a correct registry never masks
/// the downstream verdict.
#[test]
fn registered_trap_proceeds_to_the_verification_path() {
    let registry: SiteRegistry = trap_pcs().into_iter().collect();
    let (outcome, kernel) = run_enforcing(VerifyTier::Mac, registry);
    assert!(matches!(outcome, RunOutcome::Killed(_)), "{outcome:?}");
    let alert = kernel.alerts().last().expect("kill alerts");
    assert_ne!(
        alert.reason(),
        ReasonCode::UnrewrittenSite,
        "a registered site must not be an origin kill: {alert}"
    );
    assert_eq!(
        alert.reason(),
        ReasonCode::MemoryFault,
        "the verifier died fetching the missing descriptor: {alert}"
    );
}

/// A partial registry kills the first trap whose pc is not in it, even
/// when other pcs are registered — membership is per site, not per
/// binary.
#[test]
fn partial_registry_kills_the_first_unregistered_site() {
    let pcs = trap_pcs();
    assert!(pcs.len() >= 2, "guest traps at least twice");
    // Register only the *second* site: the first trap is the violation.
    let registry: SiteRegistry = pcs[1..].iter().copied().collect();
    let (outcome, kernel) = run_enforcing(VerifyTier::Mac, registry);
    assert!(matches!(outcome, RunOutcome::Killed(_)), "{outcome:?}");
    let alert = kernel.alerts().last().expect("kill alerts");
    assert_eq!(alert.reason(), ReasonCode::UnrewrittenSite);
    assert!(
        alert.to_string().contains(&format!("{:#x}", pcs[0])),
        "attributed to the unregistered first site: {}",
        alert
    );
}

/// A flow tier without a digraph is a configuration error the kernel
/// turns into a kill — never a panic, never an unchecked pass.
#[test]
fn flow_tier_without_a_digraph_kills_instead_of_passing() {
    let registry: SiteRegistry = trap_pcs().into_iter().collect();
    let (outcome, _) = run_enforcing(VerifyTier::MacPlusFlow, registry);
    match outcome {
        RunOutcome::Killed(msg) => {
            assert!(msg.contains("flow tier without a digraph"), "{msg}")
        }
        other => panic!("expected a misconfiguration kill, got {other:?}"),
    }
}
