//! Seeded property test over [`asc_kernel::KernelStats`]: whatever a
//! workload does, the counter relations the reports rely on must hold.
//!
//! The kernel also carries `debug_assert!`s for the same relations in the
//! trap handler; this test exercises them across randomized inputs and
//! cache configurations (tests build with debug assertions on).

use asc_crypto::MacKey;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{Kernel, KernelOptions, KernelStats, Personality};
use asc_vm::Machine;

const PERSONALITY: Personality = Personality::Linux;

/// Guest whose syscall mix depends on stdin: each input byte selects a
/// different call (write / getpid / open+close / uid probes), so random
/// inputs produce varied hot/cold and repeat patterns.
const GUEST: &str = r#"
fn main() {
    var buf[64];
    let n = read(0, buf, 64);
    var i = 0;
    while (i < n) {
        let c = buf[i];
        if (c == 119) {
            write(1, "w", 1);
        }
        if (c == 103) {
            getpid();
        }
        if (c == 111) {
            let fd = open("/etc/motd", 0, 0);
            close(fd);
        }
        if (c == 117) {
            getuid();
            geteuid();
        }
        i = i + 1;
    }
    return 0;
}
"#;

/// Deterministic xorshift64* generator (no external RNG crates).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn check_invariants(stats: &KernelStats, cached: bool, label: &str) {
    assert!(
        stats.verified <= stats.syscalls,
        "{label}: verified {} > syscalls {}",
        stats.verified,
        stats.syscalls
    );
    assert!(
        stats.warm_aes_blocks <= stats.verify_aes_blocks,
        "{label}: warm AES blocks {} > total {}",
        stats.warm_aes_blocks,
        stats.verify_aes_blocks
    );
    assert!(
        stats.warm_verify_cycles <= stats.verify_cycles,
        "{label}: warm verify cycles {} > total {}",
        stats.warm_verify_cycles,
        stats.verify_cycles
    );
    assert!(
        stats.cache_hits + stats.cache_fallbacks <= stats.verified,
        "{label}: {} hits + {} fallbacks > {} verified",
        stats.cache_hits,
        stats.cache_fallbacks,
        stats.verified
    );
    assert!(
        stats.verify_cycles <= stats.kernel_cycles,
        "{label}: verify cycles {} > kernel cycles {}",
        stats.verify_cycles,
        stats.kernel_cycles
    );
    assert_eq!(
        stats.cold_verified(),
        stats.verified - stats.cache_hits,
        "{label}"
    );
    if !cached {
        assert_eq!(stats.cache_hits, 0, "{label}: hits without a cache");
        assert_eq!(
            stats.warm_aes_blocks, 0,
            "{label}: warm AES without a cache"
        );
        assert_eq!(
            stats.warm_verify_cycles, 0,
            "{label}: warm cycles without a cache"
        );
        assert_eq!(
            stats.cache_fallbacks, 0,
            "{label}: fallbacks without a cache"
        );
    }
}

#[test]
fn stats_invariants_hold_across_random_workloads() {
    let key = MacKey::from_seed(0x57A7_51F7);
    let plain = asc_workloads::build_source(GUEST, PERSONALITY).expect("guest builds");
    let installer = Installer::new(
        key.clone(),
        InstallerOptions::new(PERSONALITY).with_program_id(7),
    );
    let (auth, _) = installer.install(&plain, "statsprop").expect("installs");

    let mut rng = Rng(0xDEC0_DE5E_ED00_0001);
    let alphabet = [b'w', b'g', b'o', b'u', b'x'];
    for trial in 0..24 {
        let len = rng.below(60) as usize;
        let stdin: Vec<u8> = (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect();
        let cached = rng.below(2) == 1;
        let opts = if cached {
            KernelOptions::enforcing(PERSONALITY).with_verify_cache()
        } else {
            KernelOptions::enforcing(PERSONALITY)
        };
        let mut kernel = Kernel::new(opts);
        kernel.set_key(key.clone());
        kernel.set_stdin(stdin.clone());
        kernel.set_brk(auth.highest_addr());
        let mut machine = Machine::load(&auth, kernel).expect("loads");
        let outcome = machine.run(100_000_000);
        let kernel = machine.into_handler();
        assert!(
            outcome.is_success(),
            "trial {trial}: {outcome:?} (alerts: {:?})",
            kernel.alerts()
        );
        let label = format!("trial {trial} (cached={cached}, stdin={stdin:?})");
        check_invariants(kernel.stats(), cached, &label);
    }
}

#[test]
fn absorb_sums_every_counter() {
    let mut a = KernelStats {
        syscalls: 10,
        verified: 8,
        verify_aes_blocks: 40,
        verify_cycles: 4000,
        kernel_cycles: 9000,
        cache_hits: 5,
        warm_aes_blocks: 5,
        warm_verify_cycles: 500,
        cache_fallbacks: 1,
        cache_scrubs: 1,
    };
    let b = a;
    a.absorb(&b);
    assert_eq!(a.syscalls, 20);
    assert_eq!(a.verified, 16);
    assert_eq!(a.verify_aes_blocks, 80);
    assert_eq!(a.verify_cycles, 8000);
    assert_eq!(a.kernel_cycles, 18000);
    assert_eq!(a.cache_hits, 10);
    assert_eq!(a.warm_aes_blocks, 10);
    assert_eq!(a.warm_verify_cycles, 1000);
    assert_eq!(a.cache_fallbacks, 2);
    assert_eq!(a.cache_scrubs, 2);
}
