//! Structured administrator alerts.
//!
//! When the trap handler kills a process (the paper's fail-stop response to
//! a verification failure), it records *what* failed as data, not prose:
//! the call site, the syscall, and the exact [`Violation`]. Campaign
//! harnesses classify on [`Alert::reason`]; humans (and the log-format
//! stability test) read the [`Display`](std::fmt::Display) rendering,
//! which is byte-identical to the pre-structured string log.

use asc_core::Violation;
use asc_trace::ReasonCode;

/// One administrator alert: a process was killed for a policy violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alert {
    /// The process the kernel killed. Single-process harnesses always run
    /// as pid 1 (the historical rendering); a scheduler assigns real pids
    /// via [`crate::Kernel::set_pid`] so alerts attribute the kill to the
    /// offending process, not a hardcoded placeholder.
    pub pid: u32,
    /// Address of the `syscall` instruction that trapped (the call site).
    pub site: u32,
    /// The syscall number the process requested.
    pub nr: u16,
    /// The personality's name for that syscall (`"?"` if unknown).
    pub name: String,
    /// The verification failure that triggered the kill.
    pub violation: Violation,
}

impl Alert {
    /// Stable machine-readable classification of the failure.
    pub fn reason(&self) -> ReasonCode {
        self.violation.reason_code()
    }
}

impl std::fmt::Display for Alert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ALERT: pid {} killed: {} (syscall {} `{}` at {:#x})",
            self.pid, self.violation, self.nr, self.name, self.site
        )
    }
}
