//! The submission-ring batch path: amortizing shared-verifier setup across
//! a window of authenticated calls.
//!
//! A fleet-scale scheduler drives thousands of kernels against one
//! pid-sharded [`asc_core::SharedVerifyCache`]. Unbatched, every enforced
//! trap probes the shared family once to resolve the calling pid's cache
//! namespace. The batch path instead opens a **batch window** around a
//! scheduler slice ([`crate::Kernel::open_batch_window`] /
//! [`crate::Kernel::close_batch_window`]): at the first enforced call of
//! the window the pid's namespace is *detached* from the family (one
//! probe), up to `K` calls drain against the local namespace with zero
//! shared-structure traffic, and the namespace is *reattached* on window
//! close (one probe). Setup cost per call falls from `O(1 probe/call)` to
//! `O(2 probes/K calls)` — measured by the family's shard probe counters,
//! not modeled. The fixed AES state is amortized the same way one level
//! down: the kernel's installed [`asc_crypto::MacKey`] holds the expanded
//! key schedule for the life of the process, and a fleet shares one
//! schedule across every kernel via [`asc_crypto::MacKey::shared_schedule`]
//! (measured via `block_ops`).
//!
//! # Soundness: batching cannot reorder or skip checks
//!
//! Each enforced trap pushes its authenticated-call registers onto the
//! window's FIFO ring and the ring is drained *within the same trap*, in
//! submission order, through the unchanged
//! [`asc_core::verify_call_traced`] — the guest is synchronous, so the
//! ring's occupancy never exceeds one and no call can observe another
//! call's result early. Every drained call runs the complete per-call
//! check suite (call MAC, blobs, policy state, capability check) against
//! the *same* [`asc_core::VerifyCache`] state machine it would hit
//! unbatched: detach/attach moves the namespace, never its contents, so
//! hits, epochs, scrubs, per-pid statistics, and the accept set are
//! bit-identical to the unbatched path by construction. The window close
//! asserts the ring is empty — a queued-but-unverified call cannot
//! survive a window.

use std::collections::VecDeque;

use asc_core::{AuthCallRegs, VerifyCache};

/// Counters for the batched verification path. Kernel-level observability
/// only: these never feed `KernelStats`, charged cycles, or metrics, so
/// per-pid outputs stay bit-identical with batching on or off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Windows opened by the scheduler's slice bracketing
    /// ([`crate::Kernel::open_batch_window`] calls).
    pub opened: u64,
    /// Windows closed ([`crate::Kernel::close_batch_window`] calls that
    /// found a window open).
    pub closed: u64,
    /// Batch windows that detached a cache namespace (a window with no
    /// enforced cached call opens nothing and costs nothing).
    pub windows: u64,
    /// Calls submitted to the ring.
    pub submitted: u64,
    /// Calls drained from the ring through the verifier.
    pub drained: u64,
    /// High-water ring occupancy (1 while guests are synchronous).
    pub max_depth: u64,
}

impl BatchStats {
    /// Folds another kernel's counters into this one (fleet aggregation).
    pub fn absorb(&mut self, other: &BatchStats) {
        self.opened += other.opened;
        self.closed += other.closed;
        self.windows += other.windows;
        self.submitted += other.submitted;
        self.drained += other.drained;
        self.max_depth = self.max_depth.max(other.max_depth);
    }

    /// Drained calls per namespace-detaching window — how full the ring
    /// ran, the number the `O(2 probes/K calls)` amortisation claim rides
    /// on. 0.0 before any window detached.
    pub fn fill_ratio(&self) -> f64 {
        if self.windows > 0 {
            self.drained as f64 / self.windows as f64
        } else {
            0.0
        }
    }
}

/// One open batch window: the bounded submission ring plus the pid's
/// detached cache namespace (taken lazily at the first enforced call).
#[derive(Debug)]
pub(crate) struct BatchSession {
    /// Ring capacity `K`: after `K` drained calls the window rolls
    /// (namespace reattached, next call opens a fresh window).
    pub(crate) capacity: usize,
    /// The pid's cache namespace, detached from the shared family for the
    /// life of the window. `None` until the first enforced cached call,
    /// and again after a kill discards it.
    pub(crate) namespace: Option<VerifyCache>,
    /// FIFO of submitted, not-yet-verified calls.
    pub(crate) ring: VecDeque<AuthCallRegs>,
    /// Calls drained in the current window (rolls the window at
    /// `capacity`).
    pub(crate) drained_in_window: usize,
}

impl BatchSession {
    pub(crate) fn new(capacity: usize) -> BatchSession {
        BatchSession {
            capacity: capacity.max(1),
            namespace: None,
            ring: VecDeque::new(),
            drained_in_window: 0,
        }
    }
}
