//! System call ABI: the symbolic syscall identifiers, per-call signatures,
//! and the two OS personalities (Linux-like and OpenBSD-like numbering).
//!
//! Two personalities exist because the paper's policy-generation experiments
//! run on both Linux and OpenBSD (Tables 1–2) and hinge on OS-specific ABI
//! quirks that we reproduce:
//!
//! * numbering differs between the personalities, so a policy generated for
//!   one OS is meaningless on the other;
//! * OpenBSD's `mmap` is reached through `__syscall`, a generic indirect
//!   system call whose first argument is the real call number — static
//!   analysis therefore constrains `__syscall(SYS_mmap, ...)` while a
//!   trained monitor records `mmap`;
//! * OpenBSD uses `getdirentries` where Linux uses `getdents`, and has a
//!   `sysconf`-as-syscall quirk.
//!
//! The [`SyscallSpec`] table also records the signature facts the
//! installer's argument classification needs: which parameters are
//! output-only (Table 3's `o/p` column), which are pathnames, which are
//! file descriptors (the `fds` column), and which calls mint or revoke
//! descriptors (capability tracking, §5.3).

/// Symbolic, personality-independent syscall identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum SyscallId {
    Exit,
    Fork,
    Read,
    Write,
    Open,
    Close,
    Waitpid,
    Creat,
    Link,
    Unlink,
    Execve,
    Chdir,
    Time,
    Mknod,
    Chmod,
    Lchown,
    Lseek,
    Getpid,
    Setuid,
    Getuid,
    Alarm,
    Fstat,
    Pause,
    Utime,
    Access,
    Nice,
    Sync,
    Kill,
    Rename,
    Mkdir,
    Rmdir,
    Dup,
    Pipe,
    Times,
    Brk,
    Setgid,
    Getgid,
    Geteuid,
    Getegid,
    Ioctl,
    Fcntl,
    Setpgid,
    Umask,
    Chroot,
    Dup2,
    Getppid,
    Getpgrp,
    Setsid,
    Sigaction,
    Sigsuspend,
    Sigpending,
    Sethostname,
    Setrlimit,
    Getrlimit,
    Getrusage,
    Gettimeofday,
    Settimeofday,
    Symlink,
    Readlink,
    Mmap,
    Munmap,
    Truncate,
    Ftruncate,
    Fchmod,
    Fchown,
    Statfs,
    Fstatfs,
    Stat,
    Lstat,
    Socket,
    Connect,
    Bind,
    Listen,
    Accept,
    Sendto,
    Recvfrom,
    Shutdown,
    Setsockopt,
    Getsockopt,
    Nanosleep,
    Uname,
    Madvise,
    Writev,
    Readv,
    Getdents,
    Getdirentries,
    Poll,
    SchedYield,
    ClockGettime,
    Sysconf,
    /// OpenBSD's generic indirect system call (`__syscall`): argument 0 is
    /// the real call number, remaining arguments shift up by one.
    IndirectSyscall,
}

/// Signature facts about one syscall.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyscallSpec {
    /// Symbolic identity.
    pub id: SyscallId,
    /// Canonical name (as printed in policies and tables).
    pub name: &'static str,
    /// Number of arguments.
    pub nargs: u8,
    /// Bit `i` set: argument `i` is an output-only pointer (the kernel
    /// writes the result there).
    pub out_mask: u8,
    /// Bit `i` set: argument `i` is a pathname string.
    pub path_mask: u8,
    /// Bit `i` set: argument `i` is a file descriptor.
    pub fd_mask: u8,
    /// The return value is a new file descriptor (`open`, `socket`, ...).
    pub returns_fd: bool,
    /// Argument 0 ceases to be a valid descriptor afterwards (`close`).
    pub closes_fd: bool,
}

macro_rules! spec {
    ($id:ident, $name:literal, $nargs:literal, out=$out:literal, path=$path:literal,
     fd=$fd:literal, rfd=$rfd:literal, cfd=$cfd:literal) => {
        SyscallSpec {
            id: SyscallId::$id,
            name: $name,
            nargs: $nargs,
            out_mask: $out,
            path_mask: $path,
            fd_mask: $fd,
            returns_fd: $rfd,
            closes_fd: $cfd,
        }
    };
}

/// The master signature table.
pub const SPECS: &[SyscallSpec] = &[
    spec!(
        Exit,
        "exit",
        1,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Fork,
        "fork",
        0,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Read,
        "read",
        3,
        out = 0b010,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Write,
        "write",
        3,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Open,
        "open",
        3,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = true,
        cfd = false
    ),
    spec!(
        Close,
        "close",
        1,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = true
    ),
    spec!(
        Waitpid,
        "waitpid",
        3,
        out = 0b010,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Creat,
        "creat",
        2,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = true,
        cfd = false
    ),
    spec!(
        Link,
        "link",
        2,
        out = 0,
        path = 0b011,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Unlink,
        "unlink",
        1,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Execve,
        "execve",
        3,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Chdir,
        "chdir",
        1,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Time,
        "time",
        1,
        out = 0b001,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Mknod,
        "mknod",
        3,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Chmod,
        "chmod",
        2,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Lchown,
        "lchown",
        3,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Lseek,
        "lseek",
        3,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Getpid,
        "getpid",
        0,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Setuid,
        "setuid",
        1,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Getuid,
        "getuid",
        0,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Alarm,
        "alarm",
        1,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Fstat,
        "fstat",
        2,
        out = 0b010,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Pause,
        "pause",
        0,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Utime,
        "utime",
        2,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Access,
        "access",
        2,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Nice,
        "nice",
        1,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Sync,
        "sync",
        0,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Kill,
        "kill",
        2,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Rename,
        "rename",
        2,
        out = 0,
        path = 0b011,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Mkdir,
        "mkdir",
        2,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Rmdir,
        "rmdir",
        1,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Dup,
        "dup",
        1,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = true,
        cfd = false
    ),
    spec!(
        Pipe,
        "pipe",
        1,
        out = 0b001,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Times,
        "times",
        1,
        out = 0b001,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Brk,
        "brk",
        1,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Setgid,
        "setgid",
        1,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Getgid,
        "getgid",
        0,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Geteuid,
        "geteuid",
        0,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Getegid,
        "getegid",
        0,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Ioctl,
        "ioctl",
        3,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Fcntl,
        "fcntl",
        3,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Setpgid,
        "setpgid",
        2,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Umask,
        "umask",
        1,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Chroot,
        "chroot",
        1,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Dup2,
        "dup2",
        2,
        out = 0,
        path = 0,
        fd = 0b011,
        rfd = true,
        cfd = false
    ),
    spec!(
        Getppid,
        "getppid",
        0,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Getpgrp,
        "getpgrp",
        0,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Setsid,
        "setsid",
        0,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Sigaction,
        "sigaction",
        3,
        out = 0b100,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Sigsuspend,
        "sigsuspend",
        1,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Sigpending,
        "sigpending",
        1,
        out = 0b001,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Sethostname,
        "sethostname",
        2,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Setrlimit,
        "setrlimit",
        2,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Getrlimit,
        "getrlimit",
        2,
        out = 0b010,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Getrusage,
        "getrusage",
        2,
        out = 0b010,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Gettimeofday,
        "gettimeofday",
        2,
        out = 0b011,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Settimeofday,
        "settimeofday",
        2,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Symlink,
        "symlink",
        2,
        out = 0,
        path = 0b011,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Readlink,
        "readlink",
        3,
        out = 0b010,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Mmap,
        "mmap",
        6,
        out = 0,
        path = 0,
        fd = 0b010000,
        rfd = false,
        cfd = false
    ),
    spec!(
        Munmap,
        "munmap",
        2,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Truncate,
        "truncate",
        2,
        out = 0,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Ftruncate,
        "ftruncate",
        2,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Fchmod,
        "fchmod",
        2,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Fchown,
        "fchown",
        3,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Statfs,
        "statfs",
        2,
        out = 0b010,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Fstatfs,
        "fstatfs",
        2,
        out = 0b010,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Stat,
        "stat",
        2,
        out = 0b010,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Lstat,
        "lstat",
        2,
        out = 0b010,
        path = 0b001,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Socket,
        "socket",
        3,
        out = 0,
        path = 0,
        fd = 0,
        rfd = true,
        cfd = false
    ),
    spec!(
        Connect,
        "connect",
        3,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Bind,
        "bind",
        3,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Listen,
        "listen",
        2,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Accept,
        "accept",
        3,
        out = 0b110,
        path = 0,
        fd = 0b001,
        rfd = true,
        cfd = false
    ),
    spec!(
        Sendto,
        "sendto",
        6,
        out = 0,
        path = 0,
        fd = 0b000001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Recvfrom,
        "recvfrom",
        6,
        out = 0b110010,
        path = 0,
        fd = 0b000001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Shutdown,
        "shutdown",
        2,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Setsockopt,
        "setsockopt",
        5,
        out = 0,
        path = 0,
        fd = 0b00001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Getsockopt,
        "getsockopt",
        5,
        out = 0b11000,
        path = 0,
        fd = 0b00001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Nanosleep,
        "nanosleep",
        2,
        out = 0b010,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Uname,
        "uname",
        1,
        out = 0b001,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Madvise,
        "madvise",
        3,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Writev,
        "writev",
        3,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Readv,
        "readv",
        3,
        out = 0,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Getdents,
        "getdents",
        3,
        out = 0b010,
        path = 0,
        fd = 0b001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Getdirentries,
        "getdirentries",
        4,
        out = 0b1010,
        path = 0,
        fd = 0b0001,
        rfd = false,
        cfd = false
    ),
    spec!(
        Poll,
        "poll",
        3,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        SchedYield,
        "sched_yield",
        0,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        ClockGettime,
        "clock_gettime",
        2,
        out = 0b010,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        Sysconf,
        "sysconf",
        1,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
    spec!(
        IndirectSyscall,
        "__syscall",
        6,
        out = 0,
        path = 0,
        fd = 0,
        rfd = false,
        cfd = false
    ),
];

/// Looks up the signature spec for an identifier.
pub fn spec(id: SyscallId) -> &'static SyscallSpec {
    SPECS
        .iter()
        .find(|s| s.id == id)
        .expect("every id has a spec")
}

/// The OS flavour a binary and kernel speak.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Personality {
    /// Linux-like numbering; `mmap` and `getdents` are direct syscalls.
    Linux,
    /// OpenBSD-like numbering; `mmap` goes through `__syscall`,
    /// `getdirentries` replaces `getdents`, `sysconf` is a syscall.
    OpenBsd,
}

impl Personality {
    /// Short name used in policies and reports.
    pub fn name(self) -> &'static str {
        match self {
            Personality::Linux => "linux",
            Personality::OpenBsd => "openbsd",
        }
    }

    /// The syscall number for `id` under this personality, or `None` if
    /// the personality does not provide the call directly.
    pub fn nr(self, id: SyscallId) -> Option<u16> {
        use SyscallId::*;
        let table: &[(SyscallId, u16, u16)] = NR_TABLE;
        // Personality-specific availability.
        match (self, id) {
            // Linux has no generic indirect syscall and no sysconf syscall.
            (Personality::Linux, IndirectSyscall) | (Personality::Linux, Sysconf) => return None,
            // Linux uses getdents, OpenBSD uses getdirentries.
            (Personality::Linux, Getdirentries) | (Personality::OpenBsd, Getdents) => return None,
            // OpenBSD implements these in libc (over setitimer,
            // setpriority, sigsuspend), not as syscalls.
            (Personality::OpenBsd, Alarm)
            | (Personality::OpenBsd, Nice)
            | (Personality::OpenBsd, Pause) => return None,
            _ => {}
        }
        table
            .iter()
            .find(|(i, _, _)| *i == id)
            .map(|(_, linux, bsd)| match self {
                Personality::Linux => *linux,
                Personality::OpenBsd => *bsd,
            })
    }

    /// Reverse lookup: the identifier carried by syscall number `nr`.
    pub fn id(self, nr: u16) -> Option<SyscallId> {
        NR_TABLE
            .iter()
            .find(|(id, linux, bsd)| {
                (match self {
                    Personality::Linux => *linux,
                    Personality::OpenBsd => *bsd,
                }) == nr
                    && self.nr(*id).is_some()
            })
            .map(|(id, _, _)| *id)
    }

    /// The canonical name of syscall number `nr` ("unknown" if absent).
    pub fn name_of(self, nr: u16) -> &'static str {
        self.id(nr).map(|id| spec(id).name).unwrap_or("unknown")
    }
}

/// `(id, linux_nr, openbsd_nr)`. The numbers are loosely modelled on the
/// real tables (old Linux i386 numbers; OpenBSD numbers differ on purpose)
/// — what matters for the experiments is that the two personalities
/// disagree, not the specific values.
const NR_TABLE: &[(SyscallId, u16, u16)] = {
    use SyscallId::*;
    &[
        (IndirectSyscall, 0, 198),
        (Exit, 1, 1),
        (Fork, 2, 2),
        (Read, 3, 3),
        (Write, 4, 4),
        (Open, 5, 5),
        (Close, 6, 6),
        (Waitpid, 7, 107),
        (Creat, 8, 8),
        (Link, 9, 9),
        (Unlink, 10, 10),
        (Execve, 11, 59),
        (Chdir, 12, 12),
        (Time, 13, 113),
        (Mknod, 14, 14),
        (Chmod, 15, 15),
        (Lchown, 16, 16),
        (Lseek, 19, 199),
        (Getpid, 20, 20),
        (Setuid, 23, 23),
        (Getuid, 24, 24),
        (Alarm, 27, 127),
        (Fstat, 28, 62),
        (Pause, 29, 129),
        (Utime, 30, 130),
        (Access, 33, 33),
        (Nice, 34, 134),
        (Sync, 36, 36),
        (Kill, 37, 122),
        (Rename, 38, 128),
        (Mkdir, 39, 136),
        (Rmdir, 40, 137),
        (Dup, 41, 41),
        (Pipe, 42, 263),
        (Times, 43, 143),
        (Brk, 45, 17),
        (Setgid, 46, 181),
        (Getgid, 47, 47),
        (Geteuid, 49, 25),
        (Getegid, 50, 43),
        (Ioctl, 54, 54),
        (Fcntl, 55, 92),
        (Setpgid, 57, 82),
        (Umask, 60, 160),
        (Chroot, 61, 61),
        (Dup2, 63, 90),
        (Getppid, 64, 39),
        (Getpgrp, 65, 81),
        (Setsid, 66, 147),
        (Sigaction, 67, 46),
        (Sigsuspend, 72, 111),
        (Sigpending, 73, 52),
        (Sethostname, 74, 88),
        (Setrlimit, 75, 195),
        (Getrlimit, 76, 194),
        (Getrusage, 77, 117),
        (Gettimeofday, 78, 116),
        (Settimeofday, 79, 131),
        (Symlink, 83, 57),
        (Readlink, 85, 58),
        (Mmap, 90, 197),
        (Munmap, 91, 73),
        (Truncate, 92, 200),
        (Ftruncate, 93, 201),
        (Fchmod, 94, 124),
        (Fchown, 95, 123),
        (Statfs, 99, 63),
        (Fstatfs, 100, 64),
        (Stat, 106, 38),
        (Lstat, 107, 40),
        (Socket, 102, 97),
        (Connect, 103, 98),
        (Bind, 104, 104),
        (Listen, 105, 106),
        (Accept, 108, 30),
        (Sendto, 109, 133),
        (Recvfrom, 110, 29),
        (Shutdown, 111, 205),
        (Setsockopt, 112, 105),
        (Getsockopt, 113, 118),
        (Nanosleep, 162, 240),
        (Uname, 122, 164),
        (Madvise, 219, 75),
        (Writev, 146, 121),
        (Readv, 145, 120),
        (Getdents, 141, 0),
        (Getdirentries, 0, 196),
        (Poll, 168, 252),
        (SchedYield, 158, 298),
        (ClockGettime, 265, 232),
        (Sysconf, 0, 161),
    ]
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_spec_reachable_and_consistent() {
        for s in SPECS {
            assert_eq!(spec(s.id).name, s.name);
            assert!(s.nargs as usize <= 6, "{}", s.name);
            // All masks fit within nargs bits.
            let limit = if s.nargs == 0 {
                0
            } else {
                (1u16 << s.nargs) - 1
            };
            assert_eq!(s.out_mask as u16 & !limit, 0, "{} out_mask", s.name);
            assert_eq!(s.path_mask as u16 & !limit, 0, "{} path_mask", s.name);
            assert_eq!(s.fd_mask as u16 & !limit, 0, "{} fd_mask", s.name);
        }
    }

    #[test]
    fn personalities_disagree_and_are_injective() {
        for p in [Personality::Linux, Personality::OpenBsd] {
            let mut seen = HashSet::new();
            for (id, _, _) in NR_TABLE {
                if let Some(nr) = p.nr(*id) {
                    assert!(seen.insert(nr), "{p:?} duplicate nr {nr} for {id:?}");
                    assert_eq!(p.id(nr), Some(*id), "{p:?} reverse lookup for {id:?}");
                }
            }
        }
        // Representative disagreements (Table 1's point about portability):
        assert_ne!(
            Personality::Linux.nr(SyscallId::Mmap),
            Personality::OpenBsd.nr(SyscallId::Mmap)
        );
        assert_ne!(
            Personality::Linux.nr(SyscallId::Kill),
            Personality::OpenBsd.nr(SyscallId::Kill)
        );
    }

    #[test]
    fn personality_specific_calls() {
        assert_eq!(Personality::Linux.nr(SyscallId::IndirectSyscall), None);
        assert_eq!(
            Personality::OpenBsd.nr(SyscallId::IndirectSyscall),
            Some(198)
        );
        assert_eq!(Personality::Linux.nr(SyscallId::Sysconf), None);
        assert!(Personality::OpenBsd.nr(SyscallId::Sysconf).is_some());
        assert!(Personality::Linux.nr(SyscallId::Getdents).is_some());
        assert_eq!(Personality::Linux.nr(SyscallId::Getdirentries), None);
        assert_eq!(Personality::OpenBsd.nr(SyscallId::Getdents), None);
        assert!(Personality::OpenBsd.nr(SyscallId::Getdirentries).is_some());
    }

    #[test]
    fn name_lookup() {
        let open_nr = Personality::Linux.nr(SyscallId::Open).unwrap();
        assert_eq!(Personality::Linux.name_of(open_nr), "open");
        assert_eq!(Personality::Linux.name_of(9999), "unknown");
    }

    #[test]
    fn signature_facts_used_by_classification() {
        let open = spec(SyscallId::Open);
        assert!(open.returns_fd);
        assert_eq!(open.path_mask, 1);
        let close = spec(SyscallId::Close);
        assert!(close.closes_fd);
        assert_eq!(close.fd_mask, 1);
        let read = spec(SyscallId::Read);
        assert_eq!(read.out_mask, 0b010); // buf is output-only
        assert_eq!(read.fd_mask, 0b001);
        let gtod = spec(SyscallId::Gettimeofday);
        assert_eq!(gtod.out_mask, 0b011);
    }
}
