//! Kernel-side metrics: the trap handler's per-call distributions.
//!
//! [`KernelMetrics`] wraps an [`asc_metrics::Registry`] with every handle
//! the trap handler records into pre-resolved, so the per-syscall hot path
//! is a handful of array-indexed histogram updates — no name lookups, no
//! allocation. Like the flight recorder, metrics are **off by default**
//! ([`crate::Kernel::attach_metrics`] opts in) and never feed back into the
//! cost model: charged cycles and every `KernelStats` counter are identical
//! with or without a registry attached.
//!
//! The metric families and their reconstruction identities (asserted by
//! `crates/kernel/tests/metrics_identity.rs`):
//!
//! * `asc_verify_cycles{path}` / `asc_verify_aes_blocks{path}` /
//!   `asc_verify_bytes{path}` — one observation per *successful*
//!   verification, labeled by how the verified-call cache participated
//!   (`cold`, `warm`, `fallback`, `scrub`). Summing `sum` across paths
//!   reconstructs `KernelStats::verify_cycles` / `verify_aes_blocks`
//!   exactly.
//! * `asc_verify_fixed_cycles{path}` — the fixed (check-independent) term
//!   of each call's verification cost.
//! * `asc_check_cycles{family}` / `asc_check_aes_blocks{family}` /
//!   `asc_check_bytes{family}` — one observation per verification check,
//!   labeled by check family (`CallMeter`'s partition: call-mac,
//!   auth-string, pattern, capability, pred-set, policy-state, flow-edge).
//!   Because the per-check records partition a call's AES blocks and bytes
//!   exactly, and the per-record cost (`CostModel::check_cost_of` — linear
//!   in blocks/bytes, plus the fixed flow-check term per flow-edge record)
//!   partitions the variable verify cost, `Σ_family check_cycles.sum +
//!   Σ_path fixed_cycles.sum == KernelStats::verify_cycles` and
//!   `Σ_family check_aes_blocks.sum == KernelStats::verify_aes_blocks`.
//! * `asc_syscalls_total`, `asc_kills_total`,
//!   `asc_cache_outcome_total{outcome}` — plain counters; the cache-outcome
//!   counter is only incremented when the verified-call cache is enabled.

use asc_core::VerifyOutcome;
use asc_metrics::{CounterId, GaugeId, HistogramId, Registry, Snapshot};
use asc_trace::{CheckKind, CheckRecord, CHECK_FAMILIES};

use crate::cost::CostModel;

/// The cache-participation paths a verification is labeled with, in
/// [`PATH_COLD`]..[`PATH_SCRUB`] order.
pub const VERIFY_PATHS: [&str; 4] = ["cold", "warm", "fallback", "scrub"];

/// Full cold verification (no cache, or no entry for the key).
pub const PATH_COLD: usize = 0;
/// Call MAC served from the verified-call cache.
pub const PATH_WARM: usize = 1;
/// A cache entry existed but no longer matched; graceful cold fallback.
pub const PATH_FALLBACK: usize = 2;
/// A poisoned future-epoch state entry was scrubbed before the cold path.
pub const PATH_SCRUB: usize = 3;

/// The kernel's metrics registry with every trap-handler handle
/// pre-resolved. Thread one through a multi-kernel benchmark with
/// [`crate::Kernel::set_metrics`] / [`crate::Kernel::take_metrics`], or
/// merge per-kernel [`Snapshot`]s instead — histogram merge is exact.
#[derive(Clone, Debug)]
pub struct KernelMetrics {
    registry: Registry,
    pub(crate) syscalls: CounterId,
    pub(crate) kills: CounterId,
    pub(crate) cache_outcome: [CounterId; 4],
    verify_cycles: [HistogramId; 4],
    fixed_cycles: [HistogramId; 4],
    aes_blocks: [HistogramId; 4],
    bytes: [HistogramId; 4],
    check_cycles: [HistogramId; CHECK_FAMILIES],
    check_aes: [HistogramId; CHECK_FAMILIES],
    check_bytes: [HistogramId; CHECK_FAMILIES],
    pub(crate) ring_dropped: GaugeId,
}

impl Default for KernelMetrics {
    fn default() -> Self {
        KernelMetrics::new()
    }
}

impl KernelMetrics {
    /// A fresh registry with every trap-handler metric registered.
    pub fn new() -> KernelMetrics {
        KernelMetrics::with_extra_labels(&[])
    }

    /// A registry whose every metric additionally carries a
    /// `pid="<pid>"` label. Multi-process harnesses attach one per
    /// process ([`crate::Kernel::set_metrics`]) and merge the snapshots:
    /// because the label sets are disjoint per pid, the merged snapshot
    /// keeps per-pid distributions addressable while `new()`-built
    /// registries (no `pid` label) stay byte-identical to their historical
    /// output.
    pub fn for_pid(pid: u32) -> KernelMetrics {
        let pid = pid.to_string();
        KernelMetrics::with_extra_labels(&[("pid", &pid)])
    }

    /// A registry whose every metric carries a `shard="<shard>"` label.
    /// Fleet harnesses label by the pid's cache shard
    /// ([`asc_core::pid_shard`]) instead of by pid, so the merged
    /// snapshot's cardinality is bounded by the shard count — per-shard
    /// distributions stay addressable at N=1000+ processes without a
    /// thousand pid label sets.
    pub fn for_shard(shard: usize) -> KernelMetrics {
        let shard = shard.to_string();
        KernelMetrics::with_extra_labels(&[("shard", &shard)])
    }

    /// Registers every trap-handler metric with `extra` prepended to each
    /// metric's own labels. The registry copies label strings, so `extra`
    /// may borrow temporaries.
    fn with_extra_labels(extra: &[(&str, &str)]) -> KernelMetrics {
        fn join<'a>(
            extra: &[(&'a str, &'a str)],
            base: &[(&'a str, &'a str)],
        ) -> Vec<(&'a str, &'a str)> {
            extra.iter().chain(base.iter()).copied().collect()
        }
        let mut registry = Registry::new();
        let syscalls = registry.counter("asc_syscalls_total", &join(extra, &[]));
        let kills = registry.counter("asc_kills_total", &join(extra, &[]));
        let cache_outcome = std::array::from_fn(|i| {
            registry.counter(
                "asc_cache_outcome_total",
                &join(extra, &[("outcome", VERIFY_PATHS[i])]),
            )
        });
        let verify_cycles = std::array::from_fn(|i| {
            registry.histogram(
                "asc_verify_cycles",
                &join(extra, &[("path", VERIFY_PATHS[i])]),
            )
        });
        let fixed_cycles = std::array::from_fn(|i| {
            registry.histogram(
                "asc_verify_fixed_cycles",
                &join(extra, &[("path", VERIFY_PATHS[i])]),
            )
        });
        let aes_blocks = std::array::from_fn(|i| {
            registry.histogram(
                "asc_verify_aes_blocks",
                &join(extra, &[("path", VERIFY_PATHS[i])]),
            )
        });
        let bytes = std::array::from_fn(|i| {
            registry.histogram(
                "asc_verify_bytes",
                &join(extra, &[("path", VERIFY_PATHS[i])]),
            )
        });
        let check_cycles = std::array::from_fn(|i| {
            registry.histogram(
                "asc_check_cycles",
                &join(extra, &[("family", CheckKind::family_name(i))]),
            )
        });
        let check_aes = std::array::from_fn(|i| {
            registry.histogram(
                "asc_check_aes_blocks",
                &join(extra, &[("family", CheckKind::family_name(i))]),
            )
        });
        let check_bytes = std::array::from_fn(|i| {
            registry.histogram(
                "asc_check_bytes",
                &join(extra, &[("family", CheckKind::family_name(i))]),
            )
        });
        let ring_dropped = registry.gauge("asc_trace_ring_dropped_events", &join(extra, &[]));
        KernelMetrics {
            registry,
            syscalls,
            kills,
            cache_outcome,
            verify_cycles,
            fixed_cycles,
            aes_blocks,
            bytes,
            check_cycles,
            check_aes,
            check_bytes,
            ring_dropped,
        }
    }

    /// The underlying registry (read-only; harnesses snapshot or render).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A mergeable copy of the current state.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    pub(crate) fn inc(&mut self, id: CounterId) {
        self.registry.inc(id, 1);
    }

    /// Mirrors the attached trace ring's drop counter
    /// ([`asc_trace::TraceSink::dropped`]) into the
    /// `asc_trace_ring_dropped_events` gauge. Pure telemetry: reading the
    /// counter never perturbs the ring or the metered cycle stream.
    pub(crate) fn set_ring_dropped(&mut self, dropped: u64) {
        let id = self.ring_dropped;
        self.registry.set(id, dropped as f64);
    }

    /// Records one successful verification: the per-call histograms under
    /// `path`, the per-check family histograms from the meter's records,
    /// and (when the cache was attached) the cache-outcome counter.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_verified(
        &mut self,
        path: usize,
        verify_cycles: u64,
        fixed_cycles: u64,
        outcome: &VerifyOutcome,
        checks: &[CheckRecord],
        cost: &CostModel,
        charge_costs: bool,
        cache_enabled: bool,
    ) {
        self.registry
            .observe(self.verify_cycles[path], verify_cycles);
        self.registry.observe(self.fixed_cycles[path], fixed_cycles);
        self.registry
            .observe(self.aes_blocks[path], outcome.aes_blocks);
        self.registry
            .observe(self.bytes[path], outcome.bytes_checked);
        if cache_enabled {
            self.registry.inc(self.cache_outcome[path], 1);
        }
        for record in checks {
            let family = record.kind.family();
            let cycles = if charge_costs {
                cost.check_cost_of(record)
            } else {
                0
            };
            self.registry.observe(self.check_cycles[family], cycles);
            self.registry
                .observe(self.check_aes[family], record.aes_blocks);
            self.registry
                .observe(self.check_bytes[family], record.bytes);
        }
    }
}
