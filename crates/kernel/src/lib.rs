//! The simulated operating system kernel.
//!
//! Plays the role of the modified Linux kernel in the paper's prototype:
//! a software trap handler that, for installed (authenticated) binaries,
//! verifies every system call's MAC, string integrity, and control-flow
//! policy before dispatching — and kills the process on any violation,
//! logging an administrator alert (fail-stop semantics).
//!
//! Substrates included because the experiments need them:
//!
//! * [`abi`] — syscall numbering for two OS personalities (Linux-like and
//!   OpenBSD-like) including the `__syscall` indirection quirk;
//! * [`fs`] — an in-memory filesystem with symlinks and normalisation;
//! * [`cost`] — the deterministic cycle model calibrated to Table 4;
//! * ~85 implemented system calls (see `calls.rs`).
//!
//! # Example
//!
//! ```
//! use asc_kernel::{Kernel, KernelOptions, Personality};
//!
//! let mut kernel = Kernel::new(KernelOptions::plain(Personality::Linux));
//! kernel.set_stdin(b"hello".to_vec());
//! assert_eq!(kernel.stdout(), b"");
//! ```

pub mod abi;
mod alert;
mod batch;
mod calls;
pub mod cost;
pub mod fs;
mod kernel;
pub mod metrics;

pub use abi::{spec, Personality, SyscallId, SyscallSpec, SPECS};
pub use alert::Alert;
pub use batch::BatchStats;
pub use calls::oflags;
pub use cost::CostModel;
pub use fs::{FileSystem, FsError, Inode, InodeId, InodeKind};
pub use kernel::{
    FaultAction, FdKind, Kernel, KernelOptions, KernelStats, OpenFile, TraceEntry, TrapFault,
    VerifyTier,
};
pub use metrics::{KernelMetrics, VERIFY_PATHS};

pub use asc_core::{
    CacheStats, FlowGraph, FlowParseError, SiteRegistry, SitesParseError, FLOW_START,
};
pub use asc_trace::ReasonCode;
