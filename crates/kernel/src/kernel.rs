//! The simulated kernel: process state, the software trap handler, and the
//! authenticated-system-call checking glue.
//!
//! The paper's kernel modification is ~250 lines inside the trap handler;
//! the analogue here is [`Kernel::handle_trap`]'s enforcement block, which
//! delegates the three checks of §3.4 to `asc_core::verify_call` and turns
//! any [`Violation`] into fail-stop process termination plus an
//! administrator alert.

use std::cell::RefCell;
use std::rc::Rc;

use asc_core::{
    verify_call_traced, AuthCallRegs, CacheStats, FlowGraph, SharedVerifyCache, SiteRegistry,
    UserMemory, VerifyCache, VerifyHooks, VerifyOutcome, Violation, FLOW_START,
};
use asc_crypto::{CapabilitySet, MacKey, MemoryChecker};
use asc_isa::Reg;
use asc_trace::{
    CacheDecision, CallMeter, CheckKind, CheckRecord, Event, EventKind, Severity, SpanId, TraceSink,
};
use asc_vm::{MemFault, Memory, SyscallHandler, TrapContext, TrapOutcome};

use crate::abi::{spec, Personality, SyscallId};
use crate::alert::Alert;
use crate::batch::{BatchSession, BatchStats};
use crate::cost::CostModel;
use crate::fs::FileSystem;
use crate::metrics::{KernelMetrics, PATH_COLD, PATH_FALLBACK, PATH_SCRUB, PATH_WARM};

/// What an open file descriptor refers to.
#[derive(Clone, Debug)]
pub enum FdKind {
    /// Process standard input (kernel-held byte buffer).
    Stdin,
    /// Process standard output (captured).
    Stdout,
    /// Process standard error (captured).
    Stderr,
    /// A regular file.
    File(crate::fs::InodeId),
    /// A directory opened for reading entries.
    Dir(crate::fs::InodeId),
    /// The console device.
    Console,
    /// The bit bucket.
    Null,
    /// A loopback socket (index into the kernel's socket buffers).
    Socket(usize),
    /// Read end of a pipe.
    PipeRead(usize),
    /// Write end of a pipe.
    PipeWrite(usize),
}

/// One open-file-table entry.
#[derive(Clone, Debug)]
pub struct OpenFile {
    /// What the descriptor refers to.
    pub kind: FdKind,
    /// Read/write position (files and dirs).
    pub pos: u64,
    /// Open flags.
    pub flags: u32,
}

/// One recorded system call (used by training monitors and statistics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// The *effective* syscall (after `__syscall` indirection resolution —
    /// this is what a Systrace-style monitor observes).
    pub id: SyscallId,
    /// Raw syscall number as trapped.
    pub raw_nr: u16,
    /// Call-site address.
    pub site: u32,
}

/// Aggregate counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Total system calls trapped.
    pub syscalls: u64,
    /// Calls that went through ASC verification.
    pub verified: u64,
    /// Total AES blocks spent on verification (measured, cold + warm).
    pub verify_aes_blocks: u64,
    /// Total verification cycles charged (cold + warm).
    pub verify_cycles: u64,
    /// Total kernel cycles charged (trap + handler + verification).
    pub kernel_cycles: u64,
    /// Verifications served by the verified-call cache (warm path).
    pub cache_hits: u64,
    /// AES blocks spent on warm verifications (subset of
    /// `verify_aes_blocks`; cold blocks are the difference).
    pub warm_aes_blocks: u64,
    /// Verification cycles charged on warm verifications (subset of
    /// `verify_cycles`).
    pub warm_verify_cycles: u64,
    /// Verifications where a cache entry existed but no longer matched
    /// (stale or poisoned): the kernel degraded gracefully to the full
    /// cold CMAC path instead of trusting the entry.
    pub cache_fallbacks: u64,
    /// Poisoned cache state entries scrubbed because they claimed an
    /// impossible (future) counter epoch.
    pub cache_scrubs: u64,
}

impl KernelStats {
    /// Verifications that ran the full (cold) path.
    pub fn cold_verified(&self) -> u64 {
        self.verified - self.cache_hits
    }

    /// Average verification cycles per cold call (0 when none ran).
    pub fn cold_verify_cycles_per_call(&self) -> u64 {
        (self.verify_cycles - self.warm_verify_cycles)
            .checked_div(self.cold_verified())
            .unwrap_or(0)
    }

    /// Average verification cycles per warm call (0 when none ran).
    pub fn warm_verify_cycles_per_call(&self) -> u64 {
        self.warm_verify_cycles
            .checked_div(self.cache_hits)
            .unwrap_or(0)
    }

    /// Adds another kernel's counters into this one (multi-program
    /// harnesses run tools on separate kernels and report one total).
    pub fn absorb(&mut self, other: &KernelStats) {
        self.syscalls += other.syscalls;
        self.verified += other.verified;
        self.verify_aes_blocks += other.verify_aes_blocks;
        self.verify_cycles += other.verify_cycles;
        self.kernel_cycles += other.kernel_cycles;
        self.cache_hits += other.cache_hits;
        self.warm_aes_blocks += other.warm_aes_blocks;
        self.warm_verify_cycles += other.warm_verify_cycles;
        self.cache_fallbacks += other.cache_fallbacks;
        self.cache_scrubs += other.cache_scrubs;
    }
}

/// Which verification tier an enforcing kernel runs (see DESIGN.md §15).
///
/// The tiers trade coverage for per-call cost. [`VerifyTier::Mac`] is the
/// paper's scheme: per-call AES-CMAC verification of the encoded call.
/// [`VerifyTier::FlowOnly`] is the SFIP-style cheap tier: only the
/// syscall-transition digraph membership test (`(last nr, this nr)` must be
/// an edge of the installed [`FlowGraph`]), two orders of magnitude cheaper
/// but blind to in-edge forgeries. [`VerifyTier::MacPlusFlow`] runs the
/// flow test as a pre-filter and then the full MAC suite, accepting exactly
/// the intersection of the other two tiers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum VerifyTier {
    /// Only the syscall-transition digraph membership test.
    FlowOnly,
    /// Per-call MAC verification (the paper's scheme; the default).
    #[default]
    Mac,
    /// Flow test first, then the full MAC suite.
    MacPlusFlow,
}

impl VerifyTier {
    /// All tiers, in ascending-coverage order (benchmarks iterate this).
    pub const ALL: [VerifyTier; 3] = [
        VerifyTier::FlowOnly,
        VerifyTier::Mac,
        VerifyTier::MacPlusFlow,
    ];

    /// Short stable name (table rows, CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            VerifyTier::FlowOnly => "flow-only",
            VerifyTier::Mac => "mac",
            VerifyTier::MacPlusFlow => "mac+flow",
        }
    }

    /// Whether this tier runs the flow-digraph membership test.
    pub fn checks_flow(&self) -> bool {
        !matches!(self, VerifyTier::Mac)
    }

    /// Whether this tier runs the per-call MAC verification suite.
    pub fn checks_mac(&self) -> bool {
        !matches!(self, VerifyTier::FlowOnly)
    }
}

/// Kernel construction options.
#[derive(Clone, Debug)]
pub struct KernelOptions {
    /// OS personality (syscall numbering and quirks).
    pub personality: Personality,
    /// Enforce authenticated system calls (the binary must have been
    /// processed by the installer; every call is verified and
    /// unauthenticated calls kill the process).
    pub enforce: bool,
    /// §5.3 capability tracking: verify capability-bit arguments against
    /// the active-descriptor set and maintain it on open/close.
    pub capability_tracking: bool,
    /// §5.4 file-name normalisation is always performed by the path
    /// resolver (symlinks and dot components are canonicalised before
    /// use); this flag is informational and reserved for policies that
    /// would compare against pre-normalisation names.
    pub normalize_paths: bool,
    /// Charge deterministic cycle costs (disable for pure functional runs).
    pub charge_costs: bool,
    /// Enable the verified-call cache (the warm fast path): repeated
    /// identical calls skip AES recomputation and are charged only for the
    /// cryptographic work actually performed. Off by default so the
    /// performance tables reproduce the paper's (cache-less) prototype;
    /// the fast-path numbers are reported separately.
    pub verify_cache: bool,
    /// **Test-only** deliberate weakening: skip the authenticated-string
    /// contents check (`asc_core::VerifyHooks::accept_any_string`). Exists
    /// so the fault-injection campaign can prove its oracle detects a
    /// verifier that fails open; never enable outside that experiment.
    pub weaken_string_check: bool,
    /// Which verification tier enforced calls run (see [`VerifyTier`]).
    /// [`VerifyTier::Mac`] — the default — is byte-identical to the
    /// historical behaviour; the flow tiers additionally require a
    /// [`FlowGraph`] installed via [`Kernel::set_flow_graph`].
    pub verify_tier: VerifyTier,
}

impl KernelOptions {
    /// Options for running unmodified binaries (the baseline).
    pub fn plain(personality: Personality) -> KernelOptions {
        KernelOptions {
            personality,
            enforce: false,
            capability_tracking: false,
            normalize_paths: false,
            charge_costs: true,
            verify_cache: false,
            weaken_string_check: false,
            verify_tier: VerifyTier::Mac,
        }
    }

    /// Options for running installer-produced authenticated binaries.
    pub fn enforcing(personality: Personality) -> KernelOptions {
        KernelOptions {
            enforce: true,
            ..KernelOptions::plain(personality)
        }
    }

    /// Turns on the verified-call cache (see
    /// [`KernelOptions::verify_cache`]).
    pub fn with_verify_cache(self) -> KernelOptions {
        KernelOptions {
            verify_cache: true,
            ..self
        }
    }

    /// **Test-only**: deliberately weakens the verifier (see
    /// [`KernelOptions::weaken_string_check`]).
    pub fn with_weakened_string_check(self) -> KernelOptions {
        KernelOptions {
            weaken_string_check: true,
            ..self
        }
    }

    /// Selects the verification tier (see [`KernelOptions::verify_tier`]).
    pub fn with_tier(self, tier: VerifyTier) -> KernelOptions {
        KernelOptions {
            verify_tier: tier,
            ..self
        }
    }
}

/// A kernel-side fault the campaign can arm: when trap number `at_trap`
/// (1-based, counted over all trapped system calls) arrives, `action` is
/// applied once, before verification.
#[derive(Clone, Copy, Debug)]
pub struct TrapFault {
    /// Which trap fires the fault (compared against `KernelStats::syscalls`
    /// after it is incremented for the arriving trap).
    pub at_trap: u64,
    /// What to corrupt.
    pub action: FaultAction,
}

/// The kernel-side state a [`TrapFault`] corrupts. These model faults in
/// what the *kernel* trusts beyond raw user memory: the trapped register
/// values it reads, its anti-replay counter, and its verified-call cache.
#[derive(Clone, Copy, Debug)]
pub enum FaultAction {
    /// XOR `mask` into the verifier's copy of the register selected by
    /// `index` (the [`AuthCallRegs`] field order: 0 = syscall number,
    /// 1–6 = arguments, 7 = descriptor, 8 = block id, 9 = predecessor-set
    /// pointer, 10 = state pointer, 11 = MAC pointer, 12 = hint pointer).
    /// Only the copy handed to the verifier is corrupted — the machine's
    /// real register file is untouched, so a *benign* outcome stays
    /// possible when the verifier provably ignores the register.
    XorReg {
        /// Register index (0–12) as listed above.
        index: u8,
        /// XOR mask (forced to 1 if zero).
        mask: u32,
    },
    /// Skew the memory checker's anti-replay counter by `delta`.
    SkewCounter {
        /// Signed counter shift.
        delta: i64,
    },
    /// Corrupt one byte of one verified-call cache entry
    /// (`VerifyCache::corrupt_entry_for_fault`).
    CorruptCache {
        /// Deterministic entry/byte selector.
        selector: u64,
        /// XOR mask (forced to 1 if zero).
        mask: u8,
    },
    /// Shift the cached state entry's epoch into the future
    /// (`VerifyCache::skew_state_epoch_for_fault`), which the next check
    /// must scrub.
    SkewCacheEpoch {
        /// Epoch shift (forced to at least 1).
        delta: u64,
    },
}

/// The simulated kernel for one process.
pub struct Kernel {
    pub(crate) opts: KernelOptions,
    pub(crate) cost: CostModel,
    key: Option<MacKey>,
    pub(crate) fs: FileSystem,
    pub(crate) cwd: String,
    pub(crate) fds: Vec<Option<OpenFile>>,
    pub(crate) brk: u32,
    pub(crate) mmap_cursor: u32,
    checker: MemoryChecker,
    verify_cache: VerifyCache,
    /// Scheduler-owned pid-keyed cache family. When attached, the trap
    /// handler uses this pid's namespace inside it instead of the private
    /// `verify_cache`, so concurrent processes can never serve (or
    /// invalidate) each other's entries.
    shared_cache: Option<Rc<RefCell<SharedVerifyCache>>>,
    /// Process id, 1-based. Single-process harnesses keep the default 1
    /// (the historical alert rendering); a scheduler assigns real pids.
    pid: u32,
    /// The policy-state cell address (`R10`) of the most recent
    /// *successful* control-flow verification; isolation tests use it to
    /// replay one process's cell against another.
    last_policy_cell: Option<u32>,
    /// The installed syscall-transition digraph (required by the flow
    /// tiers; parsed and MAC-verified from `.ascflow` at load time, so the
    /// per-trap check is a pure set probe).
    flow: Option<FlowGraph>,
    /// The installed rewritten-site registry (parsed and MAC-verified
    /// from `.ascsites` at load time). When present, a trap whose pc is
    /// outside the set fail-stops before the flow and MAC paths under
    /// every tier — `SYSCALL` is a privilege of rewritten sites. `None`
    /// keeps the historical behaviour for registry-free harnesses.
    sites: Option<SiteRegistry>,
    /// The raw number of this process's most recent *dispatched* syscall —
    /// the flow check's `from` node. `None` (= [`FLOW_START`]) until the
    /// first call dispatches. Lives on the kernel, and there is one kernel
    /// per process, so flow state is per-pid by construction: one
    /// process's transitions can never satisfy (or poison) another's.
    last_syscall: Option<u16>,
    caps: CapabilitySet,
    pub(crate) stdin: Vec<u8>,
    pub(crate) stdin_pos: usize,
    pub(crate) stdout: Vec<u8>,
    pub(crate) stderr: Vec<u8>,
    pub(crate) console: Vec<u8>,
    pub(crate) sockets: Vec<Vec<u8>>,
    pub(crate) pipes: Vec<std::collections::VecDeque<u8>>,
    pub(crate) time_us: u64,
    pub(crate) umask: u32,
    pub(crate) hostname: String,
    pub(crate) exec_requests: Vec<String>,
    trace: Vec<TraceEntry>,
    log: Vec<Alert>,
    stats: KernelStats,
    fault: Option<TrapFault>,
    /// Flight-recorder sink. `None` (the default) means telemetry is off
    /// and the trap handler builds no events at all.
    trace_sink: Option<Box<dyn TraceSink>>,
    /// Metrics registry. `None` (the default) means no distributions are
    /// recorded; recording never feeds back into charged cycles.
    metrics: Option<Box<KernelMetrics>>,
    /// Next span id to allocate (one span per enforced trap).
    next_span: u64,
    /// Open batch window (submission ring + detached cache namespace),
    /// `None` outside a window. See [`crate::batch`].
    batch: Option<BatchSession>,
    /// Lifetime counters for the batched path (never part of
    /// [`KernelStats`]).
    batch_stats: BatchStats,
    /// Bytes moved by the last I/O-style call (input to the cost model).
    pub(crate) last_io_bytes: u64,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("personality", &self.opts.personality)
            .field("enforce", &self.opts.enforce)
            .field("syscalls", &self.stats.syscalls)
            .finish()
    }
}

impl Kernel {
    /// A kernel with a fresh default filesystem.
    pub fn new(opts: KernelOptions) -> Kernel {
        Kernel::with_fs(opts, FileSystem::new())
    }

    /// A kernel reusing an existing filesystem (multi-program benchmarks
    /// run tools sequentially over one tree).
    pub fn with_fs(opts: KernelOptions, fs: FileSystem) -> Kernel {
        let fds = vec![
            Some(OpenFile {
                kind: FdKind::Stdin,
                pos: 0,
                flags: 0,
            }),
            Some(OpenFile {
                kind: FdKind::Stdout,
                pos: 0,
                flags: 1,
            }),
            Some(OpenFile {
                kind: FdKind::Stderr,
                pos: 0,
                flags: 1,
            }),
        ];
        Kernel {
            opts,
            cost: CostModel::default(),
            key: None,
            fs,
            cwd: "/".to_string(),
            fds,
            brk: 0,
            mmap_cursor: 0x60_0000,
            checker: MemoryChecker::new(),
            verify_cache: VerifyCache::new(),
            shared_cache: None,
            pid: 1,
            last_policy_cell: None,
            flow: None,
            sites: None,
            last_syscall: None,
            caps: [0u32, 1, 2].into_iter().collect(),
            stdin: Vec::new(),
            stdin_pos: 0,
            stdout: Vec::new(),
            stderr: Vec::new(),
            console: Vec::new(),
            sockets: Vec::new(),
            pipes: Vec::new(),
            time_us: 1_119_900_000_000_000, // mid-2005, in µs
            umask: 0o022,
            hostname: "svm32".to_string(),
            exec_requests: Vec::new(),
            trace: Vec::new(),
            log: Vec::new(),
            stats: KernelStats::default(),
            fault: None,
            trace_sink: None,
            metrics: None,
            next_span: 0,
            batch: None,
            batch_stats: BatchStats::default(),
            last_io_bytes: 0,
        }
    }

    /// Installs the verification key (the kernel side of the shared secret;
    /// required when `enforce` is on). Every cached verification was
    /// performed under the previous key, so the verified-call cache is
    /// dropped wholesale.
    pub fn set_key(&mut self, key: MacKey) {
        self.key = Some(key);
        self.verify_cache.clear();
        // During a batch window this pid's shared namespace may be
        // detached into the session; clear it wherever it lives.
        if let Some(ns) = self.batch.as_mut().and_then(|b| b.namespace.as_mut()) {
            ns.clear();
        } else if let Some(shared) = self.shared_cache.as_ref() {
            shared.borrow_mut().pid_cache(self.pid).clear();
        }
    }

    /// Behaviour counters of the verified-call cache (all zero when the
    /// cache is disabled). With a shared cache attached, these are the
    /// counters of this pid's namespace — wherever it currently lives
    /// (detached into an open batch window or resident in the family).
    pub fn cache_stats(&self) -> CacheStats {
        if let Some(ns) = self.batch.as_ref().and_then(|b| b.namespace.as_ref()) {
            return ns.stats();
        }
        match self.shared_cache.as_ref() {
            Some(shared) => shared.borrow().pid_stats(self.pid),
            None => self.verify_cache.stats(),
        }
    }

    /// Opens a batch window of capacity `k`: until
    /// [`Kernel::close_batch_window`], enforced calls submit to the
    /// window's FIFO ring and drain against a cache namespace detached
    /// from the shared family once per window instead of probed per call.
    /// A scheduler brackets each slice with open/close; re-opening an
    /// already-open window first flushes it. Per-pid outputs are
    /// bit-identical with or without a window (see the `batch` module docs).
    pub fn open_batch_window(&mut self, k: usize) {
        self.flush_batch_namespace();
        self.batch = Some(BatchSession::new(k));
        self.batch_stats.opened += 1;
    }

    /// Closes the batch window, reattaching the detached namespace (if
    /// any) to the shared family. Idempotent; a no-op when no window is
    /// open.
    pub fn close_batch_window(&mut self) {
        self.flush_batch_namespace();
        if self.batch.take().is_some() {
            self.batch_stats.closed += 1;
        }
    }

    /// Lifetime counters of the batched verification path.
    pub fn batch_stats(&self) -> BatchStats {
        self.batch_stats
    }

    /// Reattaches the window's detached namespace (if any) and resets the
    /// window's drain count. The ring must already be drained — every
    /// submission drains within its own trap.
    fn flush_batch_namespace(&mut self) {
        if let Some(session) = self.batch.as_mut() {
            debug_assert!(session.ring.is_empty(), "ring drained at window close");
            session.drained_in_window = 0;
            if let Some(ns) = session.namespace.take() {
                if let Some(shared) = self.shared_cache.as_ref() {
                    shared.borrow_mut().attach_pid(self.pid, ns);
                }
            }
        }
    }

    /// Assigns this kernel's process id (1-based; the default is 1, which
    /// preserves the historical single-process alert rendering and span
    /// ids). A scheduler calls this once per spawned process, before the
    /// process runs.
    pub fn set_pid(&mut self, pid: u32) {
        debug_assert!(pid >= 1, "pids are 1-based");
        self.pid = pid;
    }

    /// This kernel's process id.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Attaches a scheduler-owned pid-keyed cache family. The trap handler
    /// then uses this kernel's pid namespace inside it instead of the
    /// private per-kernel cache (still gated on
    /// [`KernelOptions::verify_cache`]). Call after [`Kernel::set_pid`].
    pub fn share_cache(&mut self, shared: Rc<RefCell<SharedVerifyCache>>) {
        self.shared_cache = Some(shared);
    }

    /// The in-kernel anti-replay counter (the per-process nonce the
    /// policy-state MAC is keyed by). Isolation tests compare counters
    /// across processes; nothing outside the kernel may change it.
    pub fn policy_counter(&self) -> u64 {
        self.checker.counter()
    }

    /// The policy-state cell address of the most recent successful
    /// control-flow verification, if any (see the field docs).
    pub fn last_policy_cell(&self) -> Option<u32> {
        self.last_policy_cell
    }

    /// Installs the syscall-transition digraph the flow tiers check
    /// against (parse it from the binary's `.ascflow` section with
    /// [`FlowGraph::parse`], which verifies its MAC). Required when
    /// [`KernelOptions::verify_tier`] checks flow; ignored under
    /// [`VerifyTier::Mac`].
    pub fn set_flow_graph(&mut self, flow: FlowGraph) {
        self.flow = Some(flow);
    }

    /// Installs the rewritten-site registry the origin check enforces
    /// (parse it from the binary's `.ascsites` section with
    /// [`SiteRegistry::parse`], which verifies its MAC). Once set, any
    /// trap from a pc outside the set is a fail-stop
    /// [`Violation::UnrewrittenSite`] kill under every tier, before the
    /// flow and MAC paths run.
    pub fn set_site_registry(&mut self, sites: SiteRegistry) {
        self.sites = Some(sites);
    }

    /// The installed rewritten-site registry, if any.
    pub fn site_registry(&self) -> Option<&SiteRegistry> {
        self.sites.as_ref()
    }

    /// The raw number of this process's most recent dispatched syscall
    /// (`None` until the first call dispatches) — the flow check's `from`
    /// node. Isolation tests assert this never leaks across pids.
    pub fn last_syscall(&self) -> Option<u16> {
        self.last_syscall
    }

    /// Arms one kernel-side fault for the fault-injection campaign; it
    /// fires on trap number `fault.at_trap` and is then disarmed. Only one
    /// fault can be armed at a time (campaigns inject exactly one per run).
    pub fn arm_fault(&mut self, fault: TrapFault) {
        self.fault = Some(fault);
    }

    /// Replaces the cost model.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Provides the process's standard input.
    pub fn set_stdin(&mut self, bytes: impl Into<Vec<u8>>) {
        self.stdin = bytes.into();
        self.stdin_pos = 0;
    }

    /// Sets the initial program break (done by the loader from the
    /// binary's highest address). Rounded up to a page boundary so heap
    /// pages never share protection with the last loaded section.
    pub fn set_brk(&mut self, brk: u32) {
        self.brk = brk.div_ceil(0x1000) * 0x1000;
    }

    /// Captured standard output.
    pub fn stdout(&self) -> &[u8] {
        &self.stdout
    }

    /// Captured standard error.
    pub fn stderr(&self) -> &[u8] {
        &self.stderr
    }

    /// Captured console device output.
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// The filesystem.
    pub fn fs(&self) -> &FileSystem {
        &self.fs
    }

    /// Mutable filesystem access (test fixtures, benchmark setup).
    pub fn fs_mut(&mut self) -> &mut FileSystem {
        &mut self.fs
    }

    /// Consumes the kernel, returning its filesystem (to thread through a
    /// multi-program benchmark).
    pub fn into_fs(self) -> FileSystem {
        self.fs
    }

    /// The recorded syscall trace.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Administrator alerts (policy violations), newest last. Each alert
    /// carries the call site, syscall, and structured [`Violation`];
    /// render with `Display` for the classic log line.
    pub fn alerts(&self) -> &[Alert] {
        &self.log
    }

    /// Attaches a flight-recorder sink. The trap handler emits one span
    /// per enforced call (enter, per-check records, exit or kill) into it.
    /// With no sink attached — the default — no events are built and no
    /// cycles change: telemetry never perturbs the paper tables.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace_sink = Some(sink);
    }

    /// Detaches and returns the flight-recorder sink, if any (use
    /// [`asc_trace::TraceSink::into_any`] to recover the concrete type).
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace_sink.take()
    }

    /// Attaches a fresh metrics registry (off by default). The trap
    /// handler then records per-call histograms of verification cycles,
    /// AES blocks, and bytes touched — labeled by cache path and check
    /// family — plus syscall/kill/cache-outcome counters. Recording never
    /// changes charged cycles or `KernelStats` (the no-perturbation rule).
    pub fn attach_metrics(&mut self) {
        self.metrics = Some(Box::new(KernelMetrics::new()));
    }

    /// Installs an existing metrics registry: a multi-kernel benchmark
    /// threads one registry through every kernel so the final distributions
    /// cover the whole run.
    pub fn set_metrics(&mut self, metrics: Box<KernelMetrics>) {
        self.metrics = Some(metrics);
    }

    /// Detaches and returns the metrics registry, if one was attached.
    pub fn take_metrics(&mut self) -> Option<Box<KernelMetrics>> {
        self.metrics.take()
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&KernelMetrics> {
        self.metrics.as_deref()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// `execve` calls that were *permitted* (the simulator records rather
    /// than chain-loads).
    pub fn exec_requests(&self) -> &[String] {
        &self.exec_requests
    }

    /// Current working directory.
    pub fn cwd(&self) -> &str {
        &self.cwd
    }

    /// The OS personality this kernel speaks.
    pub fn personality(&self) -> Personality {
        self.opts.personality
    }

    pub(crate) fn alloc_fd(&mut self, file: OpenFile) -> u32 {
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(file);
                return i as u32;
            }
        }
        self.fds.push(Some(file));
        (self.fds.len() - 1) as u32
    }

    pub(crate) fn fd(&mut self, fd: u32) -> Option<&mut OpenFile> {
        self.fds.get_mut(fd as usize).and_then(|s| s.as_mut())
    }

    fn handle_trap(&mut self, ctx: &mut TrapContext<'_>) -> TrapOutcome {
        self.stats.syscalls += 1;
        if let Some(m) = self.metrics.as_mut() {
            let id = m.syscalls;
            m.inc(id);
        }
        let mut charged = 0u64;
        if self.opts.charge_costs {
            charged += self.cost.trap_base;
        }

        // --- The paper's kernel modification: verify before dispatch. ---
        if self.opts.enforce {
            // Batched path: at the first enforced cached call of an open
            // batch window, detach this pid's namespace from the shared
            // family (one probe). Every call in the window then drains
            // against the local namespace — the shared structure is not
            // touched again until the window closes and reattaches it.
            if self.opts.verify_cache && self.opts.verify_tier.checks_mac() {
                if let (Some(session), Some(shared)) =
                    (self.batch.as_mut(), self.shared_cache.as_ref())
                {
                    if session.namespace.is_none() {
                        session.namespace = Some(shared.borrow_mut().detach_pid(self.pid));
                        self.batch_stats.windows += 1;
                    }
                }
            }
            // Borrow the long-lived key: its AES round keys and CMAC
            // subkeys were expanded once at `set_key` time and are reused
            // for every trap (re-deriving the schedule per call would
            // dwarf the short-message MAC itself). A fleet goes one step
            // further and shares one expanded schedule across every
            // kernel (`MacKey::shared_schedule`).
            let Some(key) = self.key.as_ref() else {
                return TrapOutcome::Kill("kernel misconfigured: enforcing without a key".into());
            };
            // Telemetry is armed only when a sink is attached *and* wants
            // events; otherwise no span is allocated, no meter records,
            // and no event is ever built (the no-perturbation rule).
            let tracing = self.trace_sink.as_ref().is_some_and(|s| s.enabled());
            // The span carries the pid dimension in its high bits; for the
            // default pid 1 this is the identity encoding, so
            // single-process trace output is byte-identical.
            let span = SpanId::for_pid(self.pid, self.next_span);
            if tracing {
                self.next_span += 1;
                if let Some(sink) = self.trace_sink.as_mut() {
                    sink.record(Event {
                        span,
                        at_cycles: ctx.cycles(),
                        severity: Severity::Info,
                        kind: EventKind::TrapEnter {
                            site: ctx.pc,
                            nr: ctx.reg(Reg::R0) as u16,
                        },
                    });
                }
            }
            let fired = match &self.fault {
                Some(f) if f.at_trap == self.stats.syscalls => self.fault.take(),
                _ => None,
            };
            let mut regs = AuthCallRegs {
                nr: ctx.reg(Reg::R0),
                call_site: ctx.pc,
                args: [
                    ctx.reg(Reg::R1),
                    ctx.reg(Reg::R2),
                    ctx.reg(Reg::R3),
                    ctx.reg(Reg::R4),
                    ctx.reg(Reg::R5),
                    ctx.reg(Reg::R6),
                ],
                pol_des: ctx.reg(Reg::R7),
                block_id: ctx.reg(Reg::R8),
                pred_set_ptr: ctx.reg(Reg::R9),
                lb_ptr: ctx.reg(Reg::R10),
                call_mac_ptr: ctx.reg(Reg::R11),
                hint_ptr: ctx.reg(Reg::R12),
            };
            if let Some(f) = fired {
                match f.action {
                    FaultAction::XorReg { index, mask } => {
                        let mask = if mask == 0 { 1 } else { mask };
                        match index {
                            0 => regs.nr ^= mask,
                            1..=6 => regs.args[index as usize - 1] ^= mask,
                            7 => regs.pol_des ^= mask,
                            8 => regs.block_id ^= mask,
                            9 => regs.pred_set_ptr ^= mask,
                            10 => regs.lb_ptr ^= mask,
                            11 => regs.call_mac_ptr ^= mask,
                            _ => regs.hint_ptr ^= mask,
                        }
                    }
                    FaultAction::SkewCounter { delta } => {
                        self.checker.skew_counter_for_fault(delta);
                    }
                    // Cache faults target this pid's namespace wherever it
                    // currently lives: detached into an open batch window,
                    // resident in the shared family, or private.
                    FaultAction::CorruptCache { selector, mask } => {
                        if let Some(ns) = self.batch.as_mut().and_then(|b| b.namespace.as_mut()) {
                            ns.corrupt_entry_for_fault(selector, mask);
                        } else {
                            match self.shared_cache.as_ref() {
                                Some(shared) => {
                                    shared
                                        .borrow_mut()
                                        .pid_cache(self.pid)
                                        .corrupt_entry_for_fault(selector, mask);
                                }
                                None => {
                                    self.verify_cache.corrupt_entry_for_fault(selector, mask);
                                }
                            }
                        }
                    }
                    FaultAction::SkewCacheEpoch { delta } => {
                        if let Some(ns) = self.batch.as_mut().and_then(|b| b.namespace.as_mut()) {
                            ns.skew_state_epoch_for_fault(delta);
                        } else {
                            match self.shared_cache.as_ref() {
                                Some(shared) => {
                                    shared
                                        .borrow_mut()
                                        .pid_cache(self.pid)
                                        .skew_state_epoch_for_fault(delta);
                                }
                                None => {
                                    self.verify_cache.skew_state_epoch_for_fault(delta);
                                }
                            }
                        }
                    }
                }
            }
            // Submission ring: inside a batch window the authenticated
            // call is queued and the ring drained FIFO within the same
            // trap — submission order is program order, so batching can
            // never reorder calls, and the drain below runs the complete
            // check suite, so it can never skip one. Occupancy is 1 while
            // guests are synchronous; the ring carries the ordering
            // contract (and the counters) an asynchronous front end would
            // rely on.
            let regs = match self.batch.as_mut() {
                Some(session) => {
                    session.ring.push_back(regs);
                    self.batch_stats.submitted += 1;
                    self.batch_stats.max_depth =
                        self.batch_stats.max_depth.max(session.ring.len() as u64);
                    let next = session.ring.pop_front().expect("just submitted");
                    self.batch_stats.drained += 1;
                    next
                }
                None => regs,
            };
            // The metrics registry needs the per-check partition too, so
            // the meter records whenever either consumer is attached.
            let metering = self.metrics.is_some();
            let mut meter = if tracing || metering {
                CallMeter::recording()
            } else {
                CallMeter::disabled()
            };
            // --- Origin privilege: the trap pc must be a rewritten site. ---
            // Checked on the *trusted* trap pc (not the verifier's
            // register copy — the pc comes from the trap itself and
            // cannot be forged) before the flow and MAC paths, under
            // every tier: a raw `SYSCALL` gadget outside the installed
            // `.ascsites` registry has no policy to verify, so the only
            // sound response is an immediate fail-stop — zero side
            // effects, zero AES work. Silent on the pass path (a pure
            // set probe charged no cycles), so registry-free harnesses
            // and existing traces are byte-identical.
            if let Some(sites) = self.sites.as_ref() {
                if !sites.contains(ctx.pc) {
                    let violation = Violation::UnrewrittenSite { pc: ctx.pc };
                    return self.kill(ctx, charged, span, tracing, &violation);
                }
            }
            // --- The SFIP flow tier: digraph membership pre-filter. ---
            // Checked on the verifier's copy of the registers (so armed
            // faults hit it like every other check) and *before* the MAC
            // suite and dispatch: a bad edge fail-stops with zero side
            // effects and zero AES work.
            let tier = self.opts.verify_tier;
            if tier.checks_flow() {
                let Some(flow) = self.flow.as_ref() else {
                    return TrapOutcome::Kill(
                        "kernel misconfigured: flow tier without a digraph".into(),
                    );
                };
                let from = self.last_syscall.unwrap_or(FLOW_START);
                let to = regs.nr as u16;
                let passed = flow.contains(from, to);
                meter.record(CheckRecord {
                    kind: CheckKind::FlowEdge,
                    passed,
                    aes_blocks: 0,
                    bytes: 0,
                    cache: CacheDecision::Disabled,
                });
                if !passed {
                    if tracing {
                        let at = ctx.cycles();
                        if let Some(sink) = self.trace_sink.as_mut() {
                            // Killed calls are charged no verification
                            // cycles (same convention as a MAC failure).
                            for record in &meter.checks {
                                sink.record(Event {
                                    span,
                                    at_cycles: at,
                                    severity: Severity::Warn,
                                    kind: EventKind::Check {
                                        record: *record,
                                        cycles: 0,
                                    },
                                });
                            }
                        }
                    }
                    let violation = Violation::BadFlowEdge { from, to };
                    return self.kill(ctx, charged, span, tracing, &violation);
                }
            }
            let mut mem = VmUserMemory(ctx.mem);
            let caps = &self.caps;
            let tracking = self.opts.capability_tracking;
            let mut cap_check = |fd: u32| caps.contains(fd);
            let hooks = VerifyHooks {
                accept_any_string: self.opts.weaken_string_check,
            };
            // Pick the cache the verifier consults: the namespace detached
            // into the open batch window, this pid's namespace inside the
            // scheduler-shared family, or the private per-kernel cache.
            // Either way the before/after stats must come from the *same*
            // cache so the fallback/scrub deltas attribute correctly.
            let batching = self
                .batch
                .as_ref()
                .is_some_and(|session| session.namespace.is_some());
            let mut shared_guard = match (
                self.opts.verify_cache && tier.checks_mac() && !batching,
                self.shared_cache.as_ref(),
            ) {
                (true, Some(shared)) => Some(shared.borrow_mut()),
                _ => None,
            };
            let cache = if !self.opts.verify_cache || !tier.checks_mac() {
                None
            } else if batching {
                self.batch.as_mut().and_then(|b| b.namespace.as_mut())
            } else {
                match shared_guard.as_mut() {
                    Some(guard) => Some(guard.pid_cache(self.pid)),
                    None => Some(&mut self.verify_cache),
                }
            };
            // With no cache in play the stats are identically zero, so the
            // deltas below are zero too.
            let cache_before = match cache.as_ref() {
                Some(c) => c.stats(),
                None => CacheStats::default(),
            };
            // Flow-only skips the MAC suite entirely: the digraph probe
            // above *is* the verification, and the outcome carries zero
            // AES blocks, zero bytes, and no cache participation.
            let result = if tier.checks_mac() {
                verify_call_traced(
                    key,
                    &mut self.checker,
                    cache,
                    &mut mem,
                    &regs,
                    tracking.then_some(&mut cap_check as &mut dyn FnMut(u32) -> bool),
                    hooks,
                    &mut meter,
                )
            } else {
                Ok(VerifyOutcome::default())
            };
            let cache_after = if batching {
                self.batch
                    .as_ref()
                    .and_then(|b| b.namespace.as_ref())
                    .map(|ns| ns.stats())
                    .unwrap_or_default()
            } else {
                match shared_guard.as_ref() {
                    Some(guard) => guard.pid_stats(self.pid),
                    None => self.verify_cache.stats(),
                }
            };
            drop(shared_guard);
            let fallback_delta = cache_after.stale_misses - cache_before.stale_misses;
            let scrub_delta = cache_after.scrubs - cache_before.scrubs;
            self.stats.cache_fallbacks += fallback_delta;
            self.stats.cache_scrubs += scrub_delta;
            // Roll the batch window once its ring capacity worth of calls
            // has drained: the namespace reattaches and the next call
            // opens a fresh window. Pure bookkeeping — no per-pid output
            // depends on where the window boundaries fall.
            if let Some(session) = self.batch.as_mut() {
                session.drained_in_window += 1;
                if session.drained_in_window >= session.capacity {
                    session.drained_in_window = 0;
                    if let Some(ns) = session.namespace.take() {
                        if let Some(shared) = self.shared_cache.as_ref() {
                            shared.borrow_mut().attach_pid(self.pid, ns);
                        }
                    }
                }
            }
            match result {
                Ok(outcome) => {
                    self.stats.verified += 1;
                    // Advance the flow state: this (verified) call is the
                    // next call's predecessor. Tracked under every tier so
                    // switching tiers never changes what the state means.
                    self.last_syscall = Some(regs.nr as u16);
                    if tier.checks_mac() && regs.lb_ptr != 0 {
                        self.last_policy_cell = Some(regs.lb_ptr);
                    }
                    self.stats.verify_aes_blocks += outcome.aes_blocks;
                    if outcome.cache_hit {
                        self.stats.cache_hits += 1;
                        self.stats.warm_aes_blocks += outcome.aes_blocks;
                    }
                    // Charged verification cycles: the fixed flow-probe
                    // term under the flow tiers, plus the metered MAC cost
                    // under the MAC tiers — so mac+flow is priced as
                    // exactly mac plus the probe.
                    let vc = if self.opts.charge_costs {
                        let flow_term = if tier.checks_flow() {
                            self.cost.flow_check
                        } else {
                            0
                        };
                        let mac_term = if tier.checks_mac() {
                            self.cost.verify_cost_for(&outcome)
                        } else {
                            0
                        };
                        flow_term + mac_term
                    } else {
                        0
                    };
                    if self.opts.charge_costs {
                        self.stats.verify_cycles += vc;
                        if outcome.cache_hit {
                            self.stats.warm_verify_cycles += vc;
                        }
                        charged += vc;
                    }
                    // The warm counters partition the totals; a violation
                    // here means warm work was double counted somewhere.
                    debug_assert!(
                        self.stats.warm_aes_blocks <= self.stats.verify_aes_blocks,
                        "warm AES blocks exceed total"
                    );
                    debug_assert!(
                        self.stats.warm_verify_cycles <= self.stats.verify_cycles,
                        "warm verify cycles exceed total"
                    );
                    debug_assert!(
                        self.stats.cache_hits + self.stats.cache_fallbacks <= self.stats.verified,
                        "more cache outcomes than verified calls"
                    );
                    if let Some(m) = self.metrics.as_mut() {
                        let path = if outcome.cache_hit {
                            PATH_WARM
                        } else if fallback_delta > 0 {
                            PATH_FALLBACK
                        } else if scrub_delta > 0 {
                            PATH_SCRUB
                        } else {
                            PATH_COLD
                        };
                        let charge_costs = self.opts.charge_costs;
                        // The per-call fixed term is a MAC-suite cost; the
                        // flow probe's whole cost lives in its check
                        // record, so flow-only's fixed term is zero and
                        // the check/fixed partition still reconstructs vc.
                        let fixed = if charge_costs && tier.checks_mac() {
                            self.cost.verify_fixed_for(outcome.cache_hit)
                        } else {
                            0
                        };
                        m.record_verified(
                            path,
                            vc,
                            fixed,
                            &outcome,
                            &meter.checks,
                            &self.cost,
                            charge_costs,
                            self.opts.verify_cache,
                        );
                    }
                    if tracing {
                        let at = ctx.cycles();
                        let fixed = if self.opts.charge_costs && tier.checks_mac() {
                            self.cost.verify_fixed_for(outcome.cache_hit)
                        } else {
                            0
                        };
                        let cost = self.cost;
                        let charge_costs = self.opts.charge_costs;
                        if let Some(sink) = self.trace_sink.as_mut() {
                            for record in &meter.checks {
                                let cycles = if charge_costs {
                                    cost.check_cost_of(record)
                                } else {
                                    0
                                };
                                sink.record(Event {
                                    span,
                                    at_cycles: at,
                                    severity: Severity::Info,
                                    kind: EventKind::Check {
                                        record: *record,
                                        cycles,
                                    },
                                });
                            }
                            sink.record(Event {
                                span,
                                at_cycles: at,
                                severity: Severity::Info,
                                kind: EventKind::TrapExit {
                                    verified: true,
                                    cache_hit: outcome.cache_hit,
                                    verify_cycles: vc,
                                    fixed_cycles: fixed,
                                },
                            });
                        }
                    }
                }
                Err(violation) => {
                    if tracing {
                        let at = ctx.cycles();
                        if let Some(sink) = self.trace_sink.as_mut() {
                            // Failed calls are charged no verification
                            // cycles, so the per-check cycle attribution
                            // is 0; the AES blocks they burnt are real
                            // and are reported.
                            for record in &meter.checks {
                                sink.record(Event {
                                    span,
                                    at_cycles: at,
                                    severity: if record.passed {
                                        Severity::Info
                                    } else {
                                        Severity::Warn
                                    },
                                    kind: EventKind::Check {
                                        record: *record,
                                        cycles: 0,
                                    },
                                });
                            }
                        }
                    }
                    return self.kill(ctx, charged, span, tracing, &violation);
                }
            }
        }

        // --- Resolve the call, including OpenBSD __syscall indirection. ---
        let raw_nr = ctx.reg(Reg::R0) as u16;
        let mut args = [
            ctx.reg(Reg::R1),
            ctx.reg(Reg::R2),
            ctx.reg(Reg::R3),
            ctx.reg(Reg::R4),
            ctx.reg(Reg::R5),
            ctx.reg(Reg::R6),
        ];
        let mut id = match self.opts.personality.id(raw_nr) {
            Some(id) => id,
            None => {
                // Unknown syscall number: ENOSYS for plain kernels. (An
                // enforcing kernel never reaches here with a forged number
                // — the MAC check fails first.)
                ctx.set_reg(Reg::R0, (-38i32) as u32);
                if self.opts.charge_costs {
                    ctx.charge(charged);
                    self.stats.kernel_cycles += charged;
                }
                return TrapOutcome::Continue;
            }
        };
        if id == SyscallId::IndirectSyscall {
            let inner_nr = args[0] as u16;
            args = [args[1], args[2], args[3], args[4], args[5], 0];
            id = match self.opts.personality.id(inner_nr) {
                Some(inner) if inner != SyscallId::IndirectSyscall => inner,
                _ => {
                    ctx.set_reg(Reg::R0, (-38i32) as u32);
                    if self.opts.charge_costs {
                        ctx.charge(charged);
                        self.stats.kernel_cycles += charged;
                    }
                    return TrapOutcome::Continue;
                }
            };
        }
        self.trace.push(TraceEntry {
            id,
            raw_nr,
            site: ctx.pc,
        });

        // --- Dispatch. ---
        let outcome = self.dispatch(id, args, ctx);

        if self.opts.charge_costs {
            let handler = self.cost.handler_cost(id, self.last_io_bytes);
            charged += handler;
            ctx.charge(charged);
            self.stats.kernel_cycles += charged;
        }

        // --- Capability maintenance (§5.3). ---
        if self.opts.capability_tracking {
            let ret = ctx.reg(Reg::R0);
            if spec(id).returns_fd && (ret as i32) >= 0 {
                self.caps.insert(ret);
            }
            if spec(id).closes_fd && ctx.reg(Reg::R0) == 0 {
                self.caps.remove(args[0]);
            }
        }
        self.sync_ring_gauge();
        outcome
    }

    /// Mirrors the trace ring's drop counter into the metrics gauge when
    /// both a sink and a registry are attached. Read-only on the sink and
    /// off the charged path, so attaching metrics never perturbs traced
    /// cycle streams.
    fn sync_ring_gauge(&mut self) {
        if let (Some(sink), Some(m)) = (self.trace_sink.as_ref(), self.metrics.as_mut()) {
            m.set_ring_dropped(sink.dropped());
        }
    }

    fn kill(
        &mut self,
        ctx: &mut TrapContext<'_>,
        charged: u64,
        span: SpanId,
        tracing: bool,
        violation: &Violation,
    ) -> TrapOutcome {
        let site = ctx.pc;
        let nr = ctx.reg(Reg::R0) as u16;
        let alert = Alert {
            pid: self.pid,
            site,
            nr,
            name: self.opts.personality.name_of(nr).to_string(),
            violation: violation.clone(),
        };
        // Fail-stop: this process is dead, so its namespace in a shared
        // cache family is dropped — and *only* its namespace; every other
        // pid's entries survive untouched. If the namespace is currently
        // detached into a batch window, it dies there instead of being
        // reattached at window close.
        if let Some(session) = self.batch.as_mut() {
            session.namespace = None;
        }
        if let Some(shared) = self.shared_cache.as_ref() {
            shared.borrow_mut().drop_pid(self.pid);
        }
        let msg = alert.to_string();
        if let Some(m) = self.metrics.as_mut() {
            let id = m.kills;
            m.inc(id);
        }
        if tracing {
            if let Some(sink) = self.trace_sink.as_mut() {
                sink.record(Event {
                    span,
                    at_cycles: ctx.cycles(),
                    severity: Severity::Alert,
                    kind: EventKind::Kill {
                        site,
                        nr,
                        reason: alert.reason(),
                    },
                });
            }
        }
        self.log.push(alert);
        self.sync_ring_gauge();
        if self.opts.charge_costs {
            ctx.charge(charged);
            self.stats.kernel_cycles += charged;
        }
        TrapOutcome::Kill(msg)
    }
}

impl SyscallHandler for Kernel {
    fn syscall(&mut self, ctx: &mut TrapContext<'_>) -> TrapOutcome {
        self.handle_trap(ctx)
    }
}

/// Adapter exposing VM memory to `asc-core`'s verifier through kernel-mode
/// accessors (the kernel may read/write any mapped page).
struct VmUserMemory<'a>(&'a mut Memory);

fn fault(addr: u32) -> Violation {
    Violation::MemoryFault { addr }
}

fn fault_of(f: MemFault) -> Violation {
    match f {
        MemFault::OutOfRange { addr }
        | MemFault::NoRead { addr }
        | MemFault::NoWrite { addr }
        | MemFault::NoExec { addr } => fault(addr),
    }
}

impl UserMemory for VmUserMemory<'_> {
    fn read_u32(&self, addr: u32) -> Result<u32, Violation> {
        self.0.kread_u32(addr).map_err(fault_of)
    }
    fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, Violation> {
        self.0
            .kread(addr, len)
            .map(|b| b.to_vec())
            .map_err(fault_of)
    }
    fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Violation> {
        self.0.kwrite(addr, bytes).map_err(fault_of)
    }
}
