//! System call semantics.
//!
//! Each call implements just enough behaviour for the guest workloads and
//! the paper's experiments; returns use the negative-errno convention.

use asc_isa::Reg;
use asc_vm::{TrapContext, TrapOutcome};

use crate::abi::SyscallId;
use crate::fs::{FsError, InodeKind};
use crate::kernel::{FdKind, Kernel, OpenFile};

/// Open flags understood by the simulated kernel.
pub mod oflags {
    /// Read only.
    pub const O_RDONLY: u32 = 0;
    /// Write only.
    pub const O_WRONLY: u32 = 1;
    /// Read and write.
    pub const O_RDWR: u32 = 2;
    /// Create if missing.
    pub const O_CREAT: u32 = 0x40;
    /// Truncate on open.
    pub const O_TRUNC: u32 = 0x200;
    /// Append on every write.
    pub const O_APPEND: u32 = 0x400;
}

const EBADF: u32 = (-9i32) as u32;
const EFAULT: u32 = (-14i32) as u32;
const EINVAL: u32 = (-22i32) as u32;
const ENOSYS: u32 = (-38i32) as u32;

fn errno(e: FsError) -> u32 {
    e.errno()
}

impl Kernel {
    fn read_path(&self, ctx: &TrapContext<'_>, addr: u32) -> Result<String, u32> {
        let bytes = ctx.mem.kread_cstr(addr, 1024).map_err(|_| EFAULT)?;
        String::from_utf8(bytes).map_err(|_| EINVAL)
    }

    /// Dispatches one (indirection-resolved) system call. Sets `R0` to the
    /// return value unless the outcome ends the process.
    pub(crate) fn dispatch(
        &mut self,
        id: SyscallId,
        args: [u32; 6],
        ctx: &mut TrapContext<'_>,
    ) -> TrapOutcome {
        self.last_io_bytes = 0;
        self.time_us += 3;
        use SyscallId::*;
        let ret: u32 = match id {
            Exit => return TrapOutcome::Exit(args[0]),
            Execve => match self.read_path(ctx, args[0]) {
                Ok(path) => {
                    self.exec_requests.push(path);
                    // The simulator records rather than chain-loads; the
                    // process ends as if replaced.
                    return TrapOutcome::Exit(0);
                }
                Err(e) => e,
            },
            Read | Readv | Recvfrom | Getdents | Getdirentries => {
                self.sys_read_family(id, args, ctx)
            }
            Write | Writev | Sendto => self.sys_write_family(id, args, ctx),
            Open => self.sys_open(args[0], args[1], args[2], ctx),
            Creat => self.sys_open(
                args[0],
                oflags::O_WRONLY | oflags::O_CREAT | oflags::O_TRUNC,
                args[1],
                ctx,
            ),
            Close => self.sys_close(args[0]),
            Lseek => self.sys_lseek(args[0], args[1], args[2]),
            Getpid => 1,
            Getppid => 0,
            Getuid | Geteuid => 1000,
            Getgid | Getegid => 100,
            Getpgrp => 1,
            Setsid | Setpgid | Setuid | Setgid | Nice => 0,
            Umask => {
                let old = self.umask;
                self.umask = args[0] & 0o777;
                old
            }
            Brk => self.sys_brk(args[0], ctx),
            Mmap => self.sys_mmap(args[1], ctx),
            Munmap => 0,
            Madvise => 0,
            Time => {
                let secs = (self.time_us / 1_000_000) as u32;
                if args[0] != 0 && ctx.mem.kwrite(args[0], &secs.to_le_bytes()).is_err() {
                    EFAULT
                } else {
                    secs
                }
            }
            Gettimeofday | ClockGettime => {
                let secs = (self.time_us / 1_000_000) as u32;
                let micros = (self.time_us % 1_000_000) as u32;
                let mut buf = [0u8; 8];
                buf[..4].copy_from_slice(&secs.to_le_bytes());
                buf[4..].copy_from_slice(&micros.to_le_bytes());
                match ctx
                    .mem
                    .kwrite(args[if id == Gettimeofday { 0 } else { 1 }], &buf)
                {
                    Ok(()) => 0,
                    Err(_) => EFAULT,
                }
            }
            Settimeofday => 0,
            Nanosleep => {
                // req = {secs, nanos}; advance simulated time.
                match ctx.mem.kread(args[0], 8) {
                    Ok(b) => {
                        let secs = u32::from_le_bytes(b[..4].try_into().expect("4"));
                        let nanos = u32::from_le_bytes(b[4..].try_into().expect("4"));
                        self.time_us += secs as u64 * 1_000_000 + nanos as u64 / 1000;
                        0
                    }
                    Err(_) => EFAULT,
                }
            }
            Alarm | Pause | Sync | SchedYield | Poll => 0,
            Kill => {
                // Signalling self with 0 probes; any real signal to self is
                // accepted (no async delivery in the simulator).
                if args[0] <= 1 {
                    0
                } else {
                    (-3i32) as u32 // ESRCH
                }
            }
            Sigaction | Sigsuspend | Sigpending => 0,
            Chdir => match self.read_path(ctx, args[0]) {
                Ok(p) => match self.fs.normalize(&p, &self.cwd) {
                    Ok(canon) => match self.fs.resolve(&canon, "/") {
                        Ok(id) if matches!(self.fs.inode(id).kind, InodeKind::Dir(_)) => {
                            self.cwd = canon;
                            0
                        }
                        Ok(_) => errno(FsError::NotADirectory),
                        Err(e) => errno(e),
                    },
                    Err(e) => errno(e),
                },
                Err(e) => e,
            },
            Chroot => 0,
            Mkdir => self.path_op(ctx, args[0], |k, p| {
                k.fs.create(&p, &k.cwd, InodeKind::Dir(Default::default()), 0o755)
                    .map(|_| 0)
            }),
            Rmdir => self.path_op(ctx, args[0], |k, p| {
                let cwd = k.cwd.clone();
                k.fs.rmdir(&p, &cwd).map(|_| 0)
            }),
            Unlink => self.path_op(ctx, args[0], |k, p| {
                let cwd = k.cwd.clone();
                k.fs.unlink(&p, &cwd).map(|_| 0)
            }),
            Link => self.path2_op(ctx, args[0], args[1], |k, a, b| {
                let cwd = k.cwd.clone();
                k.fs.link(&a, &b, &cwd).map(|_| 0)
            }),
            Symlink => self.path2_op(ctx, args[0], args[1], |k, a, b| {
                let cwd = k.cwd.clone();
                k.fs.symlink(&a, &b, &cwd).map(|_| 0)
            }),
            Rename => self.path2_op(ctx, args[0], args[1], |k, a, b| {
                let cwd = k.cwd.clone();
                k.fs.rename(&a, &b, &cwd).map(|_| 0)
            }),
            Readlink => match self.read_path(ctx, args[0]) {
                Ok(p) => match self.fs.resolve_nofollow(&p, &self.cwd) {
                    Ok(id) => match &self.fs.inode(id).kind {
                        InodeKind::Symlink(target) => {
                            let n = target.len().min(args[2] as usize);
                            match ctx.mem.kwrite(args[1], &target.as_bytes()[..n]) {
                                Ok(()) => n as u32,
                                Err(_) => EFAULT,
                            }
                        }
                        _ => EINVAL,
                    },
                    Err(e) => errno(e),
                },
                Err(e) => e,
            },
            Chmod | Utime | Lchown | Mknod => self.path_op(ctx, args[0], |k, p| {
                let cwd = k.cwd.clone();
                k.fs.resolve(&p, &cwd).map(|_| 0)
            }),
            Fchmod | Fchown | Ftruncate => {
                if self.fd(args[0]).is_some() {
                    if id == Ftruncate {
                        self.sys_truncate_fd(args[0], args[1])
                    } else {
                        0
                    }
                } else {
                    EBADF
                }
            }
            Truncate => match self.read_path(ctx, args[0]) {
                Ok(p) => match self.fs.resolve(&p, &self.cwd) {
                    Ok(inode) => match &mut self.fs.inode_mut(inode).kind {
                        InodeKind::File(data) => {
                            data.resize(args[1] as usize, 0);
                            0
                        }
                        _ => errno(FsError::IsADirectory),
                    },
                    Err(e) => errno(e),
                },
                Err(e) => e,
            },
            Stat | Lstat => self.sys_stat(id, args[0], args[1], ctx),
            Fstat => self.sys_fstat(args[0], args[1], ctx),
            Access => self.path_op(ctx, args[0], |k, p| {
                let cwd = k.cwd.clone();
                k.fs.resolve(&p, &cwd).map(|_| 0)
            }),
            Statfs | Fstatfs => {
                // Write a fixed 32-byte statfs structure.
                let buf = [0x42u8; 32];
                match ctx.mem.kwrite(args[1], &buf) {
                    Ok(()) => 0,
                    Err(_) => EFAULT,
                }
            }
            Dup => match self.fds.get(args[0] as usize).cloned().flatten() {
                Some(f) => self.alloc_fd(f),
                None => EBADF,
            },
            Dup2 => match self.fds.get(args[0] as usize).cloned().flatten() {
                Some(f) => {
                    let target = args[1] as usize;
                    if target >= 1024 {
                        EBADF
                    } else {
                        if target >= self.fds.len() {
                            self.fds.resize(target + 1, None);
                        }
                        self.fds[target] = Some(f);
                        args[1]
                    }
                }
                None => EBADF,
            },
            Pipe => {
                self.pipes.push(Default::default());
                let idx = self.pipes.len() - 1;
                let r = self.alloc_fd(OpenFile {
                    kind: FdKind::PipeRead(idx),
                    pos: 0,
                    flags: 0,
                });
                let w = self.alloc_fd(OpenFile {
                    kind: FdKind::PipeWrite(idx),
                    pos: 0,
                    flags: 1,
                });
                let mut buf = [0u8; 8];
                buf[..4].copy_from_slice(&r.to_le_bytes());
                buf[4..].copy_from_slice(&w.to_le_bytes());
                match ctx.mem.kwrite(args[0], &buf) {
                    Ok(()) => 0,
                    Err(_) => EFAULT,
                }
            }
            Fcntl | Ioctl => {
                if self.fd(args[0]).is_some() {
                    0
                } else {
                    EBADF
                }
            }
            Socket => {
                self.sockets.push(Vec::new());
                self.alloc_fd(OpenFile {
                    kind: FdKind::Socket(self.sockets.len() - 1),
                    pos: 0,
                    flags: 2,
                })
            }
            Connect | Bind | Listen | Shutdown | Setsockopt | Getsockopt => {
                if self.fd(args[0]).is_some() {
                    0
                } else {
                    EBADF
                }
            }
            Accept => match self.fd(args[0]).map(|f| f.kind.clone()) {
                Some(FdKind::Socket(_)) => {
                    self.sockets.push(Vec::new());
                    self.alloc_fd(OpenFile {
                        kind: FdKind::Socket(self.sockets.len() - 1),
                        pos: 0,
                        flags: 2,
                    })
                }
                _ => EBADF,
            },
            Uname => {
                let sysname: &[u8] = match self.opts.personality {
                    crate::abi::Personality::Linux => b"SVMLinux\0",
                    crate::abi::Personality::OpenBsd => b"SVMBSD\0\0\0",
                };
                let mut buf = [0u8; 32];
                buf[..sysname.len()].copy_from_slice(sysname);
                buf[16..16 + self.hostname.len().min(15)]
                    .copy_from_slice(&self.hostname.as_bytes()[..self.hostname.len().min(15)]);
                match ctx.mem.kwrite(args[0], &buf) {
                    Ok(()) => 0,
                    Err(_) => EFAULT,
                }
            }
            Sethostname => match ctx.mem.kread(args[0], args[1].min(64)) {
                Ok(b) => {
                    self.hostname = String::from_utf8_lossy(b).into_owned();
                    0
                }
                Err(_) => EFAULT,
            },
            Times | Getrusage | Getrlimit => {
                let buf = [0u8; 16];
                let ptr = if id == Times { args[0] } else { args[1] };
                if ptr == 0 {
                    0
                } else {
                    match ctx.mem.kwrite(ptr, &buf) {
                        Ok(()) => 0,
                        Err(_) => EFAULT,
                    }
                }
            }
            Setrlimit => 0,
            Sysconf => match args[0] {
                0 => 4096, // _SC_PAGESIZE
                1 => 1024, // _SC_OPEN_MAX
                2 => 100,  // _SC_CLK_TCK
                _ => EINVAL,
            },
            Fork | Waitpid => ENOSYS,
            IndirectSyscall => ENOSYS, // double indirection rejected earlier
        };
        ctx.set_reg(Reg::R0, ret);
        TrapOutcome::Continue
    }

    fn path_op(
        &mut self,
        ctx: &TrapContext<'_>,
        addr: u32,
        f: impl FnOnce(&mut Kernel, String) -> Result<u32, FsError>,
    ) -> u32 {
        match self.read_path(ctx, addr) {
            Ok(p) => f(self, p).unwrap_or_else(errno),
            Err(e) => e,
        }
    }

    fn path2_op(
        &mut self,
        ctx: &TrapContext<'_>,
        addr_a: u32,
        addr_b: u32,
        f: impl FnOnce(&mut Kernel, String, String) -> Result<u32, FsError>,
    ) -> u32 {
        match (self.read_path(ctx, addr_a), self.read_path(ctx, addr_b)) {
            (Ok(a), Ok(b)) => f(self, a, b).unwrap_or_else(errno),
            (Err(e), _) | (_, Err(e)) => e,
        }
    }

    fn sys_open(&mut self, path_addr: u32, flags: u32, _mode: u32, ctx: &TrapContext<'_>) -> u32 {
        let path = match self.read_path(ctx, path_addr) {
            Ok(p) => p,
            Err(e) => return e,
        };
        // §5.4: resolve through symlinks to the canonical name first.
        let canon = match self.fs.normalize(&path, &self.cwd) {
            Ok(c) => c,
            Err(FsError::NotFound) if flags & oflags::O_CREAT != 0 => {
                // Create the file.
                match self
                    .fs
                    .create(&path, &self.cwd, InodeKind::File(Vec::new()), 0o666)
                {
                    Ok(id) => {
                        return self.alloc_fd(OpenFile {
                            kind: FdKind::File(id),
                            pos: 0,
                            flags,
                        })
                    }
                    Err(e) => return errno(e),
                }
            }
            Err(e) => return errno(e),
        };
        match canon.as_str() {
            "/dev/null" => {
                return self.alloc_fd(OpenFile {
                    kind: FdKind::Null,
                    pos: 0,
                    flags,
                });
            }
            "/dev/console" => {
                return self.alloc_fd(OpenFile {
                    kind: FdKind::Console,
                    pos: 0,
                    flags,
                });
            }
            _ => {}
        }
        let inode = match self.fs.resolve(&canon, "/") {
            Ok(i) => i,
            Err(e) => return errno(e),
        };
        match &mut self.fs.inode_mut(inode).kind {
            InodeKind::File(data) => {
                if flags & oflags::O_TRUNC != 0 {
                    data.clear();
                }
                self.alloc_fd(OpenFile {
                    kind: FdKind::File(inode),
                    pos: 0,
                    flags,
                })
            }
            InodeKind::Dir(_) => {
                if flags & 0x3 != oflags::O_RDONLY {
                    errno(FsError::IsADirectory)
                } else {
                    self.alloc_fd(OpenFile {
                        kind: FdKind::Dir(inode),
                        pos: 0,
                        flags,
                    })
                }
            }
            InodeKind::Symlink(_) => EINVAL, // normalize() should have followed
        }
    }

    fn sys_close(&mut self, fd: u32) -> u32 {
        match self.fds.get_mut(fd as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                0
            }
            _ => EBADF,
        }
    }

    fn sys_lseek(&mut self, fd: u32, off: u32, whence: u32) -> u32 {
        let size = match self.fd(fd).map(|f| f.kind.clone()) {
            Some(FdKind::File(inode)) => match &self.fs.inode(inode).kind {
                InodeKind::File(d) => d.len() as u64,
                _ => 0,
            },
            Some(_) => 0,
            None => return EBADF,
        };
        let Some(file) = self.fd(fd) else {
            return EBADF;
        };
        let off = off as i32 as i64;
        let new = match whence {
            0 => off,                   // SEEK_SET
            1 => file.pos as i64 + off, // SEEK_CUR
            2 => size as i64 + off,     // SEEK_END
            _ => return EINVAL,
        };
        if new < 0 {
            return EINVAL;
        }
        file.pos = new as u64;
        new as u32
    }

    fn sys_brk(&mut self, addr: u32, ctx: &mut TrapContext<'_>) -> u32 {
        if addr == 0 {
            return self.brk;
        }
        if addr > self.brk {
            // Map new heap pages RW.
            ctx.mem
                .protect(self.brk, addr - self.brk, asc_vm::PageFlags::RW);
        }
        self.brk = addr;
        self.brk
    }

    fn sys_mmap(&mut self, len: u32, ctx: &mut TrapContext<'_>) -> u32 {
        let len = len.max(1).div_ceil(0x1000) * 0x1000;
        let addr = self.mmap_cursor;
        self.mmap_cursor += len;
        ctx.mem.protect(addr, len, asc_vm::PageFlags::RW);
        addr
    }

    fn sys_truncate_fd(&mut self, fd: u32, len: u32) -> u32 {
        match self.fd(fd).map(|f| f.kind.clone()) {
            Some(FdKind::File(inode)) => match &mut self.fs.inode_mut(inode).kind {
                InodeKind::File(data) => {
                    data.resize(len as usize, 0);
                    0
                }
                _ => EINVAL,
            },
            Some(_) => EINVAL,
            None => EBADF,
        }
    }

    fn sys_stat(
        &mut self,
        id: SyscallId,
        path_addr: u32,
        buf: u32,
        ctx: &mut TrapContext<'_>,
    ) -> u32 {
        let path = match self.read_path(ctx, path_addr) {
            Ok(p) => p,
            Err(e) => return e,
        };
        let inode = match if id == SyscallId::Lstat {
            self.fs.resolve_nofollow(&path, &self.cwd)
        } else {
            self.fs.resolve(&path, &self.cwd)
        } {
            Ok(i) => i,
            Err(e) => return errno(e),
        };
        self.write_stat(inode, buf, ctx)
    }

    fn sys_fstat(&mut self, fd: u32, buf: u32, ctx: &mut TrapContext<'_>) -> u32 {
        match self.fd(fd).map(|f| f.kind.clone()) {
            Some(FdKind::File(inode)) | Some(FdKind::Dir(inode)) => {
                self.write_stat(inode, buf, ctx)
            }
            Some(_) => {
                // Character devices / sockets: zeroed stat.
                match ctx.mem.kwrite(buf, &[0u8; 16]) {
                    Ok(()) => 0,
                    Err(_) => EFAULT,
                }
            }
            None => EBADF,
        }
    }

    /// stat layout: {kind u32 (0=file,1=dir,2=link), size u32, mode u32,
    /// mtime u32}.
    fn write_stat(
        &mut self,
        inode: crate::fs::InodeId,
        buf: u32,
        ctx: &mut TrapContext<'_>,
    ) -> u32 {
        let node = self.fs.inode(inode);
        let (kind, size) = match &node.kind {
            InodeKind::File(d) => (0u32, d.len() as u32),
            InodeKind::Dir(e) => (1, e.len() as u32),
            InodeKind::Symlink(t) => (2, t.len() as u32),
        };
        let mut out = [0u8; 16];
        out[..4].copy_from_slice(&kind.to_le_bytes());
        out[4..8].copy_from_slice(&size.to_le_bytes());
        out[8..12].copy_from_slice(&node.mode.to_le_bytes());
        out[12..].copy_from_slice(&(node.mtime as u32).to_le_bytes());
        match ctx.mem.kwrite(buf, &out) {
            Ok(()) => 0,
            Err(_) => EFAULT,
        }
    }

    fn sys_read_family(&mut self, id: SyscallId, args: [u32; 6], ctx: &mut TrapContext<'_>) -> u32 {
        use SyscallId::*;
        match id {
            Read | Recvfrom => self.sys_read(args[0], args[1], args[2], ctx),
            Readv => {
                // iovec: {ptr u32, len u32} * count
                let mut total = 0u32;
                for i in 0..args[2] {
                    let base = args[1] + i * 8;
                    let (ptr, len) = match (ctx.mem.kread_u32(base), ctx.mem.kread_u32(base + 4)) {
                        (Ok(p), Ok(l)) => (p, l),
                        _ => return EFAULT,
                    };
                    let n = self.sys_read(args[0], ptr, len, ctx);
                    if (n as i32) < 0 {
                        return n;
                    }
                    total += n;
                    if n < len {
                        break;
                    }
                }
                total
            }
            Getdents | Getdirentries => self.sys_getdents(args[0], args[1], args[2], ctx),
            _ => unreachable!(),
        }
    }

    fn sys_read(&mut self, fd: u32, buf: u32, len: u32, ctx: &mut TrapContext<'_>) -> u32 {
        let len = len.min(1 << 20);
        let kind = match self.fd(fd) {
            Some(f) => f.kind.clone(),
            None => return EBADF,
        };
        let data: Vec<u8> = match kind {
            FdKind::Stdin => {
                let n = (self.stdin.len() - self.stdin_pos).min(len as usize);
                let out = self.stdin[self.stdin_pos..self.stdin_pos + n].to_vec();
                self.stdin_pos += n;
                out
            }
            FdKind::File(inode) => {
                let pos = self.fd(fd).expect("checked").pos as usize;
                match &self.fs.inode(inode).kind {
                    InodeKind::File(d) => {
                        let n = d.len().saturating_sub(pos).min(len as usize);
                        let out = d[pos..pos + n].to_vec();
                        self.fd(fd).expect("checked").pos = (pos + n) as u64;
                        out
                    }
                    _ => return errno(FsError::IsADirectory),
                }
            }
            FdKind::Socket(idx) => {
                let sock = &mut self.sockets[idx];
                let n = sock.len().min(len as usize);
                sock.drain(..n).collect()
            }
            FdKind::PipeRead(idx) => {
                let pipe = &mut self.pipes[idx];
                let n = pipe.len().min(len as usize);
                pipe.drain(..n).collect()
            }
            FdKind::Null | FdKind::Console => Vec::new(),
            FdKind::Stdout | FdKind::Stderr | FdKind::PipeWrite(_) | FdKind::Dir(_) => {
                return EBADF
            }
        };
        if !data.is_empty() && ctx.mem.kwrite(buf, &data).is_err() {
            return EFAULT;
        }
        self.last_io_bytes = data.len() as u64;
        data.len() as u32
    }

    fn sys_write_family(
        &mut self,
        id: SyscallId,
        args: [u32; 6],
        ctx: &mut TrapContext<'_>,
    ) -> u32 {
        use SyscallId::*;
        match id {
            Write | Sendto => self.sys_write(args[0], args[1], args[2], ctx),
            Writev => {
                let mut total = 0u32;
                for i in 0..args[2] {
                    let base = args[1] + i * 8;
                    let (ptr, len) = match (ctx.mem.kread_u32(base), ctx.mem.kread_u32(base + 4)) {
                        (Ok(p), Ok(l)) => (p, l),
                        _ => return EFAULT,
                    };
                    let n = self.sys_write(args[0], ptr, len, ctx);
                    if (n as i32) < 0 {
                        return n;
                    }
                    total += n;
                }
                self.last_io_bytes = total as u64;
                total
            }
            _ => unreachable!(),
        }
    }

    fn sys_write(&mut self, fd: u32, buf: u32, len: u32, ctx: &mut TrapContext<'_>) -> u32 {
        let len = len.min(1 << 20);
        let data = match ctx.mem.kread(buf, len) {
            Ok(d) => d.to_vec(),
            Err(_) => return EFAULT,
        };
        let kind = match self.fd(fd) {
            Some(f) => f.kind.clone(),
            None => return EBADF,
        };
        match kind {
            FdKind::Stdout => self.stdout.extend_from_slice(&data),
            FdKind::Stderr => self.stderr.extend_from_slice(&data),
            FdKind::Console => self.console.extend_from_slice(&data),
            FdKind::Null => {}
            FdKind::File(inode) => {
                let (pos, append) = {
                    let f = self.fd(fd).expect("checked");
                    (f.pos as usize, f.flags & oflags::O_APPEND != 0)
                };
                match &mut self.fs.inode_mut(inode).kind {
                    InodeKind::File(d) => {
                        let pos = if append { d.len() } else { pos };
                        if d.len() < pos + data.len() {
                            d.resize(pos + data.len(), 0);
                        }
                        d[pos..pos + data.len()].copy_from_slice(&data);
                        self.fd(fd).expect("checked").pos = (pos + data.len()) as u64;
                    }
                    _ => return errno(FsError::IsADirectory),
                }
            }
            FdKind::Socket(idx) => self.sockets[idx].extend_from_slice(&data),
            FdKind::PipeWrite(idx) => self.pipes[idx].extend(data.iter().copied()),
            FdKind::Stdin | FdKind::PipeRead(_) | FdKind::Dir(_) => return EBADF,
        }
        self.last_io_bytes = data.len() as u64;
        data.len() as u32
    }

    /// Directory entries are written as `{name_len u32, name bytes}`
    /// records; returns bytes written, 0 at end.
    fn sys_getdents(&mut self, fd: u32, buf: u32, len: u32, ctx: &mut TrapContext<'_>) -> u32 {
        let (inode, pos) = match self.fd(fd) {
            Some(OpenFile {
                kind: FdKind::Dir(i),
                pos,
                ..
            }) => (*i, *pos as usize),
            Some(_) => return errno(FsError::NotADirectory),
            None => return EBADF,
        };
        let names = match self.fs.list_dir(inode) {
            Ok(n) => n,
            Err(e) => return errno(e),
        };
        let mut out = Vec::new();
        let mut consumed = 0usize;
        for name in names.iter().skip(pos) {
            let rec = 4 + name.len();
            if out.len() + rec > len as usize {
                break;
            }
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            consumed += 1;
        }
        if !out.is_empty() && ctx.mem.kwrite(buf, &out).is_err() {
            return EFAULT;
        }
        self.fd(fd).expect("checked").pos = (pos + consumed) as u64;
        self.last_io_bytes = out.len() as u64;
        out.len() as u32
    }
}
