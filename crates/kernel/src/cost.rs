//! The deterministic cycle-cost model for kernel-side work.
//!
//! Calibrated so that *unmodified* syscall costs land near Table 4's
//! "Original Cost" column (getpid ≈ 1141, gettimeofday ≈ 1395,
//! read(4096) ≈ 7324, write(4096) ≈ 39479, brk ≈ 1155 cycles) and the
//! verification cost emerges from the cryptographic work counted by
//! `asc-core::verify_call` (≈ 8–10 AES blocks/call → ≈ 4,000 cycles,
//! Table 4's authenticated-minus-original gap).

use asc_core::VerifyOutcome;
use asc_trace::{CheckKind, CheckRecord};

use crate::abi::SyscallId;

/// Cost constants. All tweakable; defaults reproduce the paper's shape.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Entering + leaving the software trap handler (mode switch, register
    /// save/restore).
    pub trap_base: u64,
    /// Cycles per AES block-cipher invocation during verification.
    pub cycles_per_aes_block: u64,
    /// Fixed verification overhead (argument marshalling, comparisons).
    pub verify_fixed: u64,
    /// Fixed overhead of a warm (cache-hit) verification: the cache lookup
    /// and byte comparisons replace the marshalling-heavy cold setup.
    pub verify_cached_fixed: u64,
    /// Per-byte cost of the kernel touching user string bytes during
    /// checks (copy + walk), on top of the MAC block cost.
    pub verify_per_byte_num: u64,
    /// Extra context-switch cost charged per call by *user-space daemon*
    /// monitors (the Systrace-style baseline, used in the ablation).
    pub context_switch: u64,
    /// In-kernel table-monitor lookup cost per call (ablation baseline).
    pub table_lookup: u64,
    /// Cost of one syscall-flow-digraph membership test (the SFIP tier's
    /// check): a hash-set probe on `(last nr, this nr)` — no AES, no user
    /// memory. Calibrated to SFIP's ~2% overhead claim: two orders of
    /// magnitude below a cold MAC verification.
    pub flow_check: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            trap_base: 1_100,
            cycles_per_aes_block: 420,
            verify_fixed: 450,
            verify_cached_fixed: 120,
            verify_per_byte_num: 1,
            context_switch: 11_000,
            table_lookup: 1_900,
            flow_check: 75,
        }
    }
}

impl CostModel {
    /// Handler cost of one syscall, excluding the trap base: a fixed part
    /// per call plus data-dependent parts for I/O-style calls.
    pub fn handler_cost(&self, id: SyscallId, bytes: u64) -> u64 {
        use SyscallId::*;
        let fixed: u64 = match id {
            Getpid | Getuid | Geteuid | Getgid | Getegid | Getppid | Getpgrp | Umask | Nice => 40,
            Gettimeofday | Time | ClockGettime => 290,
            Brk => 55,
            Read | Readv | Recvfrom | Getdents | Getdirentries => 740,
            Write | Writev | Sendto => 1_150,
            Open | Creat => 2_400,
            Close => 610,
            Stat | Lstat | Fstat | Access | Statfs | Fstatfs | Readlink => 1_300,
            Unlink | Rename | Link | Symlink | Mkdir | Rmdir | Chmod | Fchmod | Chdir | Chroot
            | Mknod | Lchown | Fchown | Utime | Truncate | Ftruncate => 1_800,
            Mmap | Munmap => 900,
            Dup | Dup2 | Pipe | Lseek | Fcntl | Ioctl => 320,
            Socket | Connect | Bind | Listen | Accept | Shutdown | Setsockopt | Getsockopt => 1_600,
            Fork | Execve | Waitpid => 9_000,
            Kill | Sigaction | Sigsuspend | Sigpending | Alarm | Pause => 420,
            Nanosleep | Poll | SchedYield | Sync => 600,
            Uname | Sysconf | Sethostname | Times | Getrusage | Getrlimit | Setrlimit
            | Settimeofday | Setuid | Setgid | Setpgid | Setsid | Madvise | Exit
            | IndirectSyscall => 180,
        };
        let per_byte: u64 = match id {
            // read(4096) ≈ 1100 + 740 + 4096*1.33 ≈ 7288
            Read | Readv | Recvfrom | Getdents | Getdirentries => bytes * 4 / 3,
            // write(4096) ≈ 1100 + 1150 + 4096*9.1 ≈ 39530
            Write | Writev | Sendto => bytes * 91 / 10,
            _ => 0,
        };
        fixed + per_byte
    }

    /// Verification cost given the metering from `verify_call`.
    pub fn verify_cost(&self, aes_blocks: u64, bytes_checked: u64) -> u64 {
        self.verify_fixed
            + aes_blocks * self.cycles_per_aes_block
            + bytes_checked * self.verify_per_byte_num
    }

    /// Verification cost for a metered [`VerifyOutcome`]. The AES-block
    /// term uses the *measured* block count, so a warm verification is
    /// charged only for the blocks it actually ran (no double counting);
    /// the fixed term drops to [`CostModel::verify_cached_fixed`] on a
    /// cache hit. Bytes are always charged — the warm path still re-reads
    /// and compares every checked byte.
    pub fn verify_cost_for(&self, outcome: &VerifyOutcome) -> u64 {
        self.verify_fixed_for(outcome.cache_hit)
            + self.check_cost(outcome.aes_blocks, outcome.bytes_checked)
    }

    /// The fixed (per-call, check-independent) part of the verification
    /// cost: cold marshalling or the warm cache-lookup replacement.
    pub fn verify_fixed_for(&self, cache_hit: bool) -> u64 {
        if cache_hit {
            self.verify_cached_fixed
        } else {
            self.verify_fixed
        }
    }

    /// The variable cost of one verification check given its metered AES
    /// blocks and bytes touched. Because [`CostModel::verify_cost_for`] is
    /// linear in blocks and bytes, summing `check_cost` over a call's
    /// checks reproduces its total verify cost minus the fixed part
    /// *exactly* — the flight recorder's per-check attribution relies on
    /// this.
    pub fn check_cost(&self, aes_blocks: u64, bytes: u64) -> u64 {
        aes_blocks * self.cycles_per_aes_block + bytes * self.verify_per_byte_num
    }

    /// Kind-aware cost of one metered check record. A flow-edge check has
    /// zero AES blocks and zero bytes but a fixed [`CostModel::flow_check`]
    /// cost; every other kind is priced by its metered blocks and bytes.
    /// Summing `check_cost_of` over a call's records plus the call's fixed
    /// term still reconstructs its charged verify cycles exactly.
    pub fn check_cost_of(&self, record: &CheckRecord) -> u64 {
        if record.kind == CheckKind::FlowEdge {
            self.flow_check
        } else {
            self.check_cost(record.aes_blocks, record.bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_costs_match_table4_band() {
        let m = CostModel::default();
        let total = |id, bytes| m.trap_base + m.handler_cost(id, bytes);
        let getpid = total(SyscallId::Getpid, 0);
        assert!((1000..1300).contains(&getpid), "getpid={getpid}");
        let gtod = total(SyscallId::Gettimeofday, 0);
        assert!((1250..1550).contains(&gtod), "gettimeofday={gtod}");
        let read4k = total(SyscallId::Read, 4096);
        assert!((6800..7900).contains(&read4k), "read={read4k}");
        let write4k = total(SyscallId::Write, 4096);
        assert!((37000..42000).contains(&write4k), "write={write4k}");
        let brk = total(SyscallId::Brk, 0);
        assert!((1050..1300).contains(&brk), "brk={brk}");
    }

    #[test]
    fn verification_cost_near_4000_cycles() {
        let m = CostModel::default();
        // A typical call: ~3 blocks for the encoded call, ~1-2 for the
        // predecessor set, 2 for the state verify+update => ~7-9 blocks.
        let typical = m.verify_cost(8, 50);
        assert!((3300..4600).contains(&typical), "verify={typical}");
    }

    #[test]
    fn warm_cost_undercuts_cold_by_half() {
        let m = CostModel::default();
        let cold = VerifyOutcome {
            aes_blocks: 8,
            bytes_checked: 50,
            ..Default::default()
        };
        let warm = VerifyOutcome {
            aes_blocks: 1,
            bytes_checked: 50,
            cache_hit: true,
            ..Default::default()
        };
        assert_eq!(m.verify_cost_for(&cold), m.verify_cost(8, 50));
        assert!(
            m.verify_cost_for(&warm) * 2 <= m.verify_cost_for(&cold),
            "warm {} vs cold {}",
            m.verify_cost_for(&warm),
            m.verify_cost_for(&cold)
        );
    }

    #[test]
    fn flow_check_is_a_small_fraction_of_mac_verification() {
        // The SFIP tier's selling point: a digraph probe costs well under
        // a quarter of even a *warm* MAC verification, let alone cold.
        let m = CostModel::default();
        assert!(m.flow_check * 4 < m.verify_cached_fixed + m.check_cost(1, 50));
        assert!(m.flow_check * 4 < m.verify_cost(8, 50) / 4);
        let flow_record = CheckRecord {
            kind: CheckKind::FlowEdge,
            passed: true,
            aes_blocks: 0,
            bytes: 0,
            cache: asc_trace::CacheDecision::Disabled,
        };
        assert_eq!(m.check_cost_of(&flow_record), m.flow_check);
        let mac_record = CheckRecord {
            kind: CheckKind::CallMac,
            passed: true,
            aes_blocks: 3,
            bytes: 0,
            cache: asc_trace::CacheDecision::Disabled,
        };
        assert_eq!(m.check_cost_of(&mac_record), m.check_cost(3, 0));
    }

    #[test]
    fn baselines_cost_more_than_asc_per_call() {
        // §2.3's qualitative claim, which the ablation bench quantifies:
        // a user-space daemon pays context switches per call.
        let m = CostModel::default();
        assert!(m.context_switch > m.verify_cost(8, 50));
    }
}
