//! The in-memory filesystem backing the simulated kernel.
//!
//! Supports directories, regular files, symbolic links (needed for the
//! file-name-normalisation discussion of §5.4 and its TOCTOU example),
//! permissions bits, and path resolution with `.`/`..`/symlink handling.

use std::collections::BTreeMap;

/// Index of an inode in the filesystem arena.
pub type InodeId = usize;

/// Maximum symlink traversals during resolution (loop defence).
const MAX_LINK_DEPTH: usize = 8;

/// One filesystem object.
#[derive(Clone, Debug)]
pub enum InodeKind {
    /// Regular file contents.
    File(Vec<u8>),
    /// Directory entries, name → inode.
    Dir(BTreeMap<String, InodeId>),
    /// Symbolic link target (may be relative or absolute).
    Symlink(String),
}

/// An inode: kind plus metadata.
#[derive(Clone, Debug)]
pub struct Inode {
    /// File/dir/symlink payload.
    pub kind: InodeKind,
    /// Permission bits (0o777-style; advisory in the simulator).
    pub mode: u32,
    /// Modification time (simulated microseconds).
    pub mtime: u64,
}

/// Filesystem errors, mirroring errno values the syscalls translate to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsError {
    /// Path component does not exist.
    NotFound,
    /// Component used as a directory is not one.
    NotADirectory,
    /// Target is a directory where a file was required.
    IsADirectory,
    /// Create target already exists.
    AlreadyExists,
    /// Directory not empty on rmdir.
    NotEmpty,
    /// Too many symlink traversals.
    TooManyLinks,
    /// Invalid argument (empty path etc.).
    Invalid,
}

impl FsError {
    /// Conventional negative errno encoding for syscall returns.
    pub fn errno(self) -> u32 {
        let e: i32 = match self {
            FsError::NotFound => -2,       // ENOENT
            FsError::NotADirectory => -20, // ENOTDIR
            FsError::IsADirectory => -21,  // EISDIR
            FsError::AlreadyExists => -17, // EEXIST
            FsError::NotEmpty => -39,      // ENOTEMPTY
            FsError::TooManyLinks => -40,  // ELOOP
            FsError::Invalid => -22,       // EINVAL
        };
        e as u32
    }
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FsError::NotFound => "no such file or directory",
            FsError::NotADirectory => "not a directory",
            FsError::IsADirectory => "is a directory",
            FsError::AlreadyExists => "file exists",
            FsError::NotEmpty => "directory not empty",
            FsError::TooManyLinks => "too many levels of symbolic links",
            FsError::Invalid => "invalid argument",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FsError {}

/// The filesystem: an inode arena rooted at `/`.
#[derive(Clone, Debug)]
pub struct FileSystem {
    inodes: Vec<Inode>,
    root: InodeId,
}

impl Default for FileSystem {
    fn default() -> Self {
        FileSystem::new()
    }
}

impl FileSystem {
    /// A filesystem with `/`, `/tmp`, `/etc`, `/dev`, `/home` and a couple
    /// of well-known files.
    pub fn new() -> FileSystem {
        let mut fs = FileSystem {
            inodes: vec![Inode {
                kind: InodeKind::Dir(BTreeMap::new()),
                mode: 0o755,
                mtime: 0,
            }],
            root: 0,
        };
        for dir in ["/tmp", "/etc", "/dev", "/home", "/bin", "/usr"] {
            fs.mkdir(dir, 0o755).expect("fresh tree");
        }
        fs.write_file("/etc/motd", b"welcome to svm32\n".to_vec())
            .expect("fresh tree");
        fs.write_file("/etc/passwd", b"root:x:0:0:/home:/bin/sh\n".to_vec())
            .expect("fresh tree");
        fs.write_file("/dev/null", Vec::new()).expect("fresh tree");
        fs.write_file("/dev/console", Vec::new())
            .expect("fresh tree");
        fs.write_file("/bin/sh", b"#!shell\n".to_vec())
            .expect("fresh tree");
        fs.write_file("/bin/ls", b"#!ls\n".to_vec())
            .expect("fresh tree");
        fs
    }

    /// The root inode id.
    pub fn root(&self) -> InodeId {
        self.root
    }

    /// Immutable inode access.
    pub fn inode(&self, id: InodeId) -> &Inode {
        &self.inodes[id]
    }

    /// Mutable inode access.
    pub fn inode_mut(&mut self, id: InodeId) -> &mut Inode {
        &mut self.inodes[id]
    }

    fn alloc(&mut self, inode: Inode) -> InodeId {
        self.inodes.push(inode);
        self.inodes.len() - 1
    }

    /// Splits a path into components relative to `cwd` (absolute paths
    /// ignore `cwd`). Does not touch the filesystem.
    fn components<'p>(path: &'p str, cwd: &'p str) -> Vec<&'p str> {
        let joined: Vec<&str> = if path.starts_with('/') {
            path.split('/').collect()
        } else {
            cwd.split('/').chain(path.split('/')).collect()
        };
        joined.into_iter().filter(|c| !c.is_empty()).collect()
    }

    /// Resolves `path` (relative to `cwd`) to an inode, following symlinks.
    ///
    /// # Errors
    ///
    /// Standard resolution errors ([`FsError::NotFound`], etc.).
    pub fn resolve(&self, path: &str, cwd: &str) -> Result<InodeId, FsError> {
        self.resolve_inner(path, cwd, true, 0).map(|(id, _)| id)
    }

    /// Resolves but does not follow a final symlink (for `readlink`,
    /// `lstat`, `unlink`).
    pub fn resolve_nofollow(&self, path: &str, cwd: &str) -> Result<InodeId, FsError> {
        self.resolve_inner(path, cwd, false, 0).map(|(id, _)| id)
    }

    /// Resolves `path` to its canonical, symlink-free absolute name — the
    /// §5.4 normalisation step policies compare against.
    ///
    /// # Errors
    ///
    /// Standard resolution errors.
    pub fn normalize(&self, path: &str, cwd: &str) -> Result<String, FsError> {
        let (_, canon) = self.resolve_inner(path, cwd, true, 0)?;
        Ok(canon)
    }

    fn resolve_inner(
        &self,
        path: &str,
        cwd: &str,
        follow_last: bool,
        depth: usize,
    ) -> Result<(InodeId, String), FsError> {
        if depth > MAX_LINK_DEPTH {
            return Err(FsError::TooManyLinks);
        }
        let comps = Self::components(path, cwd);
        let mut cur = self.root;
        let mut canon: Vec<String> = Vec::new();
        let n = comps.len();
        for (i, comp) in comps.iter().enumerate() {
            match *comp {
                "." => continue,
                ".." => {
                    canon.pop();
                    cur = self.resolve_canon(&canon)?;
                    continue;
                }
                name => {
                    let InodeKind::Dir(entries) = &self.inodes[cur].kind else {
                        return Err(FsError::NotADirectory);
                    };
                    let &next = entries.get(name).ok_or(FsError::NotFound)?;
                    let is_last = i == n - 1;
                    if let InodeKind::Symlink(target) = &self.inodes[next].kind {
                        if !is_last || follow_last {
                            // Re-resolve from the link's directory.
                            let base = format!("/{}", canon.join("/"));
                            let (id, c) =
                                self.resolve_inner(target, &base, follow_last, depth + 1)?;
                            if is_last {
                                return Ok((id, c));
                            }
                            // Continue resolution from the symlink target.
                            let rest = comps[i + 1..].join("/");
                            return self.resolve_inner(&rest, &c, follow_last, depth + 1);
                        }
                    }
                    canon.push(name.to_string());
                    cur = next;
                }
            }
        }
        Ok((cur, format!("/{}", canon.join("/"))))
    }

    /// Resolves an already-canonical component list (no links, no dots).
    fn resolve_canon(&self, comps: &[String]) -> Result<InodeId, FsError> {
        let mut cur = self.root;
        for c in comps {
            let InodeKind::Dir(entries) = &self.inodes[cur].kind else {
                return Err(FsError::NotADirectory);
            };
            cur = *entries.get(c).ok_or(FsError::NotFound)?;
        }
        Ok(cur)
    }

    /// Resolves the parent directory of `path`, returning `(dir_id, name)`.
    fn resolve_parent<'p>(&self, path: &'p str, cwd: &str) -> Result<(InodeId, &'p str), FsError> {
        let trimmed = path.trim_end_matches('/');
        if trimmed.is_empty() {
            return Err(FsError::Invalid);
        }
        let (dir, name) = match trimmed.rfind('/') {
            Some(i) => (&trimmed[..i], &trimmed[i + 1..]),
            None => ("", trimmed),
        };
        if name.is_empty() || name == "." || name == ".." {
            return Err(FsError::Invalid);
        }
        let dir_id = if dir.is_empty() {
            if path.starts_with('/') {
                self.root
            } else {
                self.resolve(cwd, "/")?
            }
        } else {
            self.resolve(dir, cwd)?
        };
        if !matches!(self.inodes[dir_id].kind, InodeKind::Dir(_)) {
            return Err(FsError::NotADirectory);
        }
        Ok((dir_id, name))
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`] if the name is taken, plus resolution
    /// errors.
    pub fn mkdir(&mut self, path: &str, mode: u32) -> Result<InodeId, FsError> {
        self.create(path, "/", InodeKind::Dir(BTreeMap::new()), mode)
    }

    /// Creates an entry of the given kind under its parent.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`] or resolution errors.
    pub fn create(
        &mut self,
        path: &str,
        cwd: &str,
        kind: InodeKind,
        mode: u32,
    ) -> Result<InodeId, FsError> {
        let (dir_id, name) = self.resolve_parent(path, cwd)?;
        let InodeKind::Dir(entries) = &self.inodes[dir_id].kind else {
            return Err(FsError::NotADirectory);
        };
        if entries.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        let name = name.to_string();
        let id = self.alloc(Inode {
            kind,
            mode,
            mtime: 0,
        });
        let InodeKind::Dir(entries) = &mut self.inodes[dir_id].kind else {
            unreachable!()
        };
        entries.insert(name, id);
        Ok(id)
    }

    /// Creates or truncates a regular file with the given contents
    /// (host-side convenience for setting up test fixtures).
    ///
    /// # Errors
    ///
    /// Resolution errors.
    pub fn write_file(&mut self, path: &str, contents: Vec<u8>) -> Result<InodeId, FsError> {
        match self.resolve(path, "/") {
            Ok(id) => match &mut self.inodes[id].kind {
                InodeKind::File(data) => {
                    *data = contents;
                    Ok(id)
                }
                _ => Err(FsError::IsADirectory),
            },
            Err(FsError::NotFound) => self.create(path, "/", InodeKind::File(contents), 0o644),
            Err(e) => Err(e),
        }
    }

    /// Reads a file's contents (host-side convenience).
    ///
    /// # Errors
    ///
    /// Resolution errors, [`FsError::IsADirectory`] for non-files.
    pub fn read_file(&self, path: &str) -> Result<&[u8], FsError> {
        let id = self.resolve(path, "/")?;
        match &self.inodes[id].kind {
            InodeKind::File(data) => Ok(data),
            _ => Err(FsError::IsADirectory),
        }
    }

    /// Creates a symlink at `path` pointing to `target`.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`] or resolution errors.
    pub fn symlink(&mut self, target: &str, path: &str, cwd: &str) -> Result<InodeId, FsError> {
        self.create(path, cwd, InodeKind::Symlink(target.to_string()), 0o777)
    }

    /// Creates a hard link.
    ///
    /// # Errors
    ///
    /// Resolution errors; linking directories is [`FsError::IsADirectory`].
    pub fn link(&mut self, existing: &str, new: &str, cwd: &str) -> Result<(), FsError> {
        let id = self.resolve(existing, cwd)?;
        if matches!(self.inodes[id].kind, InodeKind::Dir(_)) {
            return Err(FsError::IsADirectory);
        }
        let (dir_id, name) = self.resolve_parent(new, cwd)?;
        let InodeKind::Dir(entries) = &mut self.inodes[dir_id].kind else {
            return Err(FsError::NotADirectory);
        };
        if entries.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        entries.insert(name.to_string(), id);
        Ok(())
    }

    /// Removes a non-directory entry.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] for directories, plus resolution errors.
    pub fn unlink(&mut self, path: &str, cwd: &str) -> Result<(), FsError> {
        let (dir_id, name) = self.resolve_parent(path, cwd)?;
        let InodeKind::Dir(entries) = &self.inodes[dir_id].kind else {
            return Err(FsError::NotADirectory);
        };
        let &id = entries.get(name).ok_or(FsError::NotFound)?;
        if matches!(self.inodes[id].kind, InodeKind::Dir(_)) {
            return Err(FsError::IsADirectory);
        }
        let name = name.to_string();
        let InodeKind::Dir(entries) = &mut self.inodes[dir_id].kind else {
            unreachable!()
        };
        entries.remove(&name);
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`FsError::NotEmpty`] if it has entries, [`FsError::NotADirectory`]
    /// for non-directories, plus resolution errors.
    pub fn rmdir(&mut self, path: &str, cwd: &str) -> Result<(), FsError> {
        let (dir_id, name) = self.resolve_parent(path, cwd)?;
        let InodeKind::Dir(entries) = &self.inodes[dir_id].kind else {
            return Err(FsError::NotADirectory);
        };
        let &id = entries.get(name).ok_or(FsError::NotFound)?;
        match &self.inodes[id].kind {
            InodeKind::Dir(children) if children.is_empty() => {}
            InodeKind::Dir(_) => return Err(FsError::NotEmpty),
            _ => return Err(FsError::NotADirectory),
        }
        let name = name.to_string();
        let InodeKind::Dir(entries) = &mut self.inodes[dir_id].kind else {
            unreachable!()
        };
        entries.remove(&name);
        Ok(())
    }

    /// Renames an entry (same simple semantics as `mv` within the tree).
    ///
    /// # Errors
    ///
    /// Resolution errors; the destination is replaced if it exists.
    pub fn rename(&mut self, from: &str, to: &str, cwd: &str) -> Result<(), FsError> {
        let (from_dir, from_name) = self.resolve_parent(from, cwd)?;
        let InodeKind::Dir(entries) = &self.inodes[from_dir].kind else {
            return Err(FsError::NotADirectory);
        };
        let &id = entries.get(from_name).ok_or(FsError::NotFound)?;
        let (to_dir, to_name) = self.resolve_parent(to, cwd)?;
        let from_name = from_name.to_string();
        let to_name = to_name.to_string();
        {
            let InodeKind::Dir(e) = &mut self.inodes[from_dir].kind else {
                unreachable!()
            };
            e.remove(&from_name);
        }
        {
            let InodeKind::Dir(e) = &mut self.inodes[to_dir].kind else {
                return Err(FsError::NotADirectory);
            };
            e.insert(to_name, id);
        }
        Ok(())
    }

    /// Directory listing (sorted names), for `getdents`/`getdirentries`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] plus resolution errors.
    pub fn list_dir(&self, id: InodeId) -> Result<Vec<String>, FsError> {
        match &self.inodes[id].kind {
            InodeKind::Dir(entries) => Ok(entries.keys().cloned().collect()),
            _ => Err(FsError::NotADirectory),
        }
    }

    /// A deterministic digest over the whole tree — every path, inode
    /// kind, and file/symlink payload, walked in sorted order. Two
    /// filesystems digest equal exactly when an observer reading every
    /// path would see identical trees; the fault-injection campaign uses
    /// this to assert a killed run had no file-system side effect beyond
    /// the un-faulted prefix.
    pub fn digest(&self) -> u64 {
        fn mix(d: &mut u64, bytes: &[u8]) {
            // FNV-1a, 64-bit.
            for &b in bytes {
                *d ^= b as u64;
                *d = d.wrapping_mul(0x0000_0100_0000_01b3);
            }
            mix_sep(d);
        }
        fn mix_sep(d: &mut u64) {
            *d ^= 0xff;
            *d = d.wrapping_mul(0x0000_0100_0000_01b3);
        }
        fn walk(fs: &FileSystem, id: InodeId, path: &str, d: &mut u64) {
            mix(d, path.as_bytes());
            match &fs.inodes[id].kind {
                InodeKind::File(contents) => {
                    mix(d, b"F");
                    mix(d, contents);
                }
                InodeKind::Symlink(target) => {
                    mix(d, b"L");
                    mix(d, target.as_bytes());
                }
                InodeKind::Dir(entries) => {
                    mix(d, b"D");
                    for (name, child) in entries {
                        let child_path = if path == "/" {
                            format!("/{name}")
                        } else {
                            format!("{path}/{name}")
                        };
                        walk(fs, *child, &child_path, d);
                    }
                }
            }
        }
        let mut d = 0xcbf2_9ce4_8422_2325u64;
        walk(self, self.root, "/", &mut d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_exist() {
        let fs = FileSystem::new();
        assert!(fs.resolve("/etc/motd", "/").is_ok());
        assert!(fs.resolve("/tmp", "/").is_ok());
        assert_eq!(fs.read_file("/etc/motd").unwrap(), b"welcome to svm32\n");
        assert_eq!(fs.resolve("/nope", "/"), Err(FsError::NotFound));
    }

    #[test]
    fn digest_tracks_observable_tree_changes() {
        let a = FileSystem::new();
        let mut b = FileSystem::new();
        assert_eq!(a.digest(), b.digest(), "identical trees digest equal");
        b.write_file("/tmp/x", b"x".to_vec()).unwrap();
        assert_ne!(a.digest(), b.digest(), "new file changes the digest");
        b.unlink("/tmp/x", "/").unwrap();
        assert_eq!(a.digest(), b.digest(), "removal restores it");
        b.write_file("/etc/motd", b"tampered\n".to_vec()).unwrap();
        assert_ne!(a.digest(), b.digest(), "content change is visible");
    }

    #[test]
    fn relative_paths_and_dots() {
        let mut fs = FileSystem::new();
        fs.mkdir("/home/user", 0o755).unwrap();
        fs.write_file("/home/user/x.txt", b"x".to_vec()).unwrap();
        assert!(fs.resolve("x.txt", "/home/user").is_ok());
        assert!(fs.resolve("./x.txt", "/home/user").is_ok());
        assert!(fs.resolve("../user/x.txt", "/home/user").is_ok());
        assert_eq!(
            fs.normalize("../user/./x.txt", "/home/user").unwrap(),
            "/home/user/x.txt"
        );
        assert_eq!(fs.normalize("/../etc/motd", "/").unwrap(), "/etc/motd");
    }

    #[test]
    fn symlink_resolution_and_normalization() {
        let mut fs = FileSystem::new();
        // The §5.4 attack setup: /tmp/foo -> /etc/passwd.
        fs.symlink("/etc/passwd", "/tmp/foo", "/").unwrap();
        let direct = fs.resolve("/etc/passwd", "/").unwrap();
        assert_eq!(fs.resolve("/tmp/foo", "/").unwrap(), direct);
        // Normalisation exposes the real target, so a policy comparing
        // normalised names sees /etc/passwd, not /tmp/foo.
        assert_eq!(fs.normalize("/tmp/foo", "/").unwrap(), "/etc/passwd");
        // nofollow sees the link itself.
        let link_id = fs.resolve_nofollow("/tmp/foo", "/").unwrap();
        assert!(matches!(fs.inode(link_id).kind, InodeKind::Symlink(_)));
    }

    #[test]
    fn symlink_loops_detected() {
        let mut fs = FileSystem::new();
        fs.symlink("/tmp/b", "/tmp/a", "/").unwrap();
        fs.symlink("/tmp/a", "/tmp/b", "/").unwrap();
        assert_eq!(fs.resolve("/tmp/a", "/"), Err(FsError::TooManyLinks));
    }

    #[test]
    fn symlink_in_the_middle_of_a_path() {
        let mut fs = FileSystem::new();
        fs.mkdir("/data", 0o755).unwrap();
        fs.write_file("/data/f", b"payload".to_vec()).unwrap();
        fs.symlink("/data", "/tmp/d", "/").unwrap();
        assert_eq!(fs.read_file("/tmp/d/f").unwrap(), b"payload");
        assert_eq!(fs.normalize("/tmp/d/f", "/").unwrap(), "/data/f");
    }

    #[test]
    fn unlink_rmdir_rules() {
        let mut fs = FileSystem::new();
        fs.write_file("/tmp/f", b"".to_vec()).unwrap();
        fs.mkdir("/tmp/d", 0o755).unwrap();
        fs.write_file("/tmp/d/inner", b"".to_vec()).unwrap();
        assert_eq!(fs.unlink("/tmp/d", "/"), Err(FsError::IsADirectory));
        assert_eq!(fs.rmdir("/tmp/d", "/"), Err(FsError::NotEmpty));
        fs.unlink("/tmp/d/inner", "/").unwrap();
        fs.rmdir("/tmp/d", "/").unwrap();
        fs.unlink("/tmp/f", "/").unwrap();
        assert_eq!(fs.resolve("/tmp/f", "/"), Err(FsError::NotFound));
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut fs = FileSystem::new();
        fs.write_file("/tmp/a", b"A".to_vec()).unwrap();
        fs.write_file("/tmp/b", b"B".to_vec()).unwrap();
        fs.rename("/tmp/a", "/tmp/b", "/").unwrap();
        assert_eq!(fs.read_file("/tmp/b").unwrap(), b"A");
        assert_eq!(fs.resolve("/tmp/a", "/"), Err(FsError::NotFound));
        fs.rename("/tmp/b", "/etc/moved", "/").unwrap();
        assert_eq!(fs.read_file("/etc/moved").unwrap(), b"A");
    }

    #[test]
    fn hard_links_share_inode() {
        let mut fs = FileSystem::new();
        fs.write_file("/tmp/orig", b"shared".to_vec()).unwrap();
        fs.link("/tmp/orig", "/tmp/alias", "/").unwrap();
        let a = fs.resolve("/tmp/orig", "/").unwrap();
        let b = fs.resolve("/tmp/alias", "/").unwrap();
        assert_eq!(a, b);
        fs.unlink("/tmp/orig", "/").unwrap();
        assert_eq!(fs.read_file("/tmp/alias").unwrap(), b"shared");
    }

    #[test]
    fn list_dir_sorted() {
        let mut fs = FileSystem::new();
        fs.write_file("/tmp/z", b"".to_vec()).unwrap();
        fs.write_file("/tmp/a", b"".to_vec()).unwrap();
        let id = fs.resolve("/tmp", "/").unwrap();
        assert_eq!(
            fs.list_dir(id).unwrap(),
            vec!["a".to_string(), "z".to_string()]
        );
        let f = fs.resolve("/tmp/a", "/").unwrap();
        assert_eq!(fs.list_dir(f), Err(FsError::NotADirectory));
    }

    #[test]
    fn create_errors() {
        let mut fs = FileSystem::new();
        assert_eq!(fs.mkdir("/tmp", 0o755), Err(FsError::AlreadyExists));
        assert_eq!(fs.mkdir("/missing/dir", 0o755), Err(FsError::NotFound));
        assert_eq!(
            fs.mkdir("/etc/motd/sub", 0o755),
            Err(FsError::NotADirectory)
        );
        assert_eq!(fs.mkdir("/", 0o755), Err(FsError::Invalid));
    }
}
