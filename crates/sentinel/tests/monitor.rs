//! Sentinel integration: windows partition the run's cumulative counters
//! exactly, a clean fleet reports healthy, and attached metrics feed the
//! windowed p99.

use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{FileSystem, Kernel, KernelMetrics, KernelOptions, Personality, VerifyTier};
use asc_sched::{SchedConfig, SchedPolicy, Scheduler};
use asc_sentinel::{Detector, Sentinel, SentinelConfig, Series};
use asc_vm::Machine;
use asc_workloads::{build, flow_graph_of, program, ProgramSpec, RUN_BUDGET};

use asc_crypto::MacKey;

const PERSONALITY: Personality = Personality::Linux;
const WORKLOADS: [&str; 3] = ["bison", "calc", "tar"];

fn key() -> MacKey {
    MacKey::from_seed(0x5E17_11E1)
}

fn machine_for(spec: &ProgramSpec, program_id: u16, with_metrics: bool) -> Machine<Kernel> {
    let plain = build(spec, PERSONALITY).expect("workload builds");
    let installer = Installer::new(
        key(),
        InstallerOptions::new(PERSONALITY).with_program_id(program_id),
    );
    let (auth, _) = installer.install(&plain, spec.name).expect("installs");
    let mut fs = FileSystem::new();
    (spec.setup_fs)(&mut fs);
    let opts = KernelOptions::enforcing(PERSONALITY)
        .with_verify_cache()
        .with_tier(VerifyTier::MacPlusFlow);
    let mut kernel = Kernel::with_fs(opts, fs);
    kernel.set_key(key());
    kernel.set_flow_graph(flow_graph_of(&auth, &key()));
    kernel.set_stdin(spec.stdin.to_vec());
    kernel.set_brk(auth.highest_addr());
    if with_metrics {
        kernel.set_metrics(Box::new(KernelMetrics::new()));
    }
    Machine::load(&auth, kernel).expect("workload fits in guest memory")
}

fn spawn_fleet(with_metrics: bool) -> Scheduler {
    let mut sched = Scheduler::with_shared_cache(SchedConfig {
        policy: SchedPolicy::SeededRandom(0x5E17_0001),
        slice_instrs: 2_000,
        budget_cycles: RUN_BUDGET,
        batch_depth: Some(8),
    });
    for (i, name) in WORKLOADS.iter().enumerate() {
        let spec = program(name).expect("workload is registered");
        sched.spawn(
            spec.name,
            machine_for(spec, 0x5E00 + i as u16, with_metrics),
        );
    }
    sched
}

/// Sum-of-windows identity: because every window is a delta of the same
/// cumulative readings, the windows partition the run — their sums equal
/// the final aggregate counters exactly, and their spans tile the clock.
#[test]
fn windows_partition_the_run_exactly() {
    let mut sched = spawn_fleet(false);
    let sentinel = Sentinel::drive(&mut sched, SentinelConfig::new(200_000));
    let windows = sentinel.windows();
    assert!(
        windows.len() >= 4,
        "expected several windows, got {}",
        windows.len()
    );
    assert_eq!(sentinel.windows_total(), windows.len() as u64);

    let agg = sched.aggregate_stats();
    let sum = |f: fn(&asc_sentinel::WindowSample) -> u64| windows.iter().map(f).sum::<u64>();
    assert_eq!(sum(|w| w.syscalls), agg.syscalls, "syscalls partition");
    assert_eq!(sum(|w| w.verified), agg.verified, "verified partition");
    assert_eq!(
        sum(|w| w.verify_cycles),
        agg.verify_cycles,
        "cycles partition"
    );
    assert_eq!(sum(|w| w.warm_hits), agg.cache_hits, "warm hits partition");
    let batch = sched.batch_stats();
    assert_eq!(
        sum(|w| w.batch_windows),
        batch.windows,
        "batch windows partition"
    );
    assert_eq!(
        sum(|w| w.batch_drained),
        batch.drained,
        "batch drains partition"
    );
    let probes = sched
        .shared_cache()
        .map(|c| c.borrow().probes())
        .unwrap_or(0);
    assert_eq!(sum(|w| w.probes), probes, "probes partition");

    // Window spans tile the clock with no gaps or overlaps, ending at
    // the final clock.
    let mut cursor = windows[0].start;
    for w in windows {
        assert_eq!(
            w.start, cursor,
            "window {} opens where the last closed",
            w.index
        );
        assert!(w.end > w.start, "window {} spans time", w.index);
        cursor = w.end;
    }
    assert_eq!(
        cursor,
        sched.clock(),
        "final window closes at the final clock"
    );
}

/// A clean enforcing fleet keeps the whole default detector suite quiet:
/// the report is healthy, with zero firings on every quiet-SLO verdict.
#[test]
fn clean_fleet_reports_healthy() {
    let mut sched = spawn_fleet(false);
    let sentinel = Sentinel::drive(&mut sched, SentinelConfig::new(200_000));
    let report = sentinel.report();
    assert!(
        report.healthy(),
        "clean fleet fired detectors: {:?}",
        report.events
    );
    assert!(report.events.is_empty());
    assert_eq!(report.verdicts.len(), Detector::default_suite().len());
    for v in &report.verdicts {
        assert!(v.quiet_slo && v.pass && v.fired == 0, "{v:?}");
    }
    // The report round-trips through JSON.
    let value = report.to_value();
    let parsed = asc_core::json::Value::parse(&value.to_pretty()).expect("report JSON parses");
    assert_eq!(parsed, value);
}

/// With `KernelMetrics` attached, windows carry the histogram-derived
/// p99 of per-call verify cycles; without, the field is absent — and
/// attachment changes no other field of any window.
#[test]
fn metrics_attachment_feeds_p99_without_changing_windows() {
    let mut bare = spawn_fleet(false);
    let bare_sentinel = Sentinel::drive(&mut bare, SentinelConfig::new(200_000));
    let mut metered = spawn_fleet(true);
    let metered_sentinel = Sentinel::drive(&mut metered, SentinelConfig::new(200_000));

    assert_eq!(
        bare_sentinel.windows().len(),
        metered_sentinel.windows().len()
    );
    let mut saw_p99 = false;
    for (b, m) in bare_sentinel
        .windows()
        .iter()
        .zip(metered_sentinel.windows())
    {
        assert_eq!(b.verify_p99, None, "no registry, no p99");
        let mut m_stripped = m.clone();
        m_stripped.verify_p99 = None;
        assert_eq!(&m_stripped, b, "metrics changed a window delta");
        if m.verified > 0 {
            let p99 = m.verify_p99.expect("verified window has a p99");
            assert!(p99 > 0);
            saw_p99 = true;
            assert_eq!(Series::VerifyP99.value(m), Some(p99 as f64));
        }
    }
    assert!(saw_p99, "no window verified anything");
}

/// The retained tail is bounded while totals and events keep counting.
#[test]
fn retained_tail_is_bounded() {
    let mut sched = spawn_fleet(false);
    let sentinel = Sentinel::drive(&mut sched, SentinelConfig::new(100_000).with_max_windows(3));
    assert!(sentinel.windows_total() > 3);
    assert_eq!(sentinel.windows().len(), 3);
    let last = sentinel.windows().last().expect("tail kept");
    assert_eq!(
        last.index,
        sentinel.windows_total() - 1,
        "indices stay monotone"
    );
}
