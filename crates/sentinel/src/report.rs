//! The aggregated [`HealthReport`]: retained windows, every detector
//! firing, and per-detector SLO verdicts.

use asc_core::json::Value;

use crate::detector::HealthEvent;
use crate::window::WindowSample;

/// One detector's SLO verdict over a whole run.
#[derive(Clone, Debug, PartialEq)]
pub struct SloVerdict {
    /// Detector name.
    pub detector: String,
    /// Times it fired.
    pub fired: u64,
    /// Whether the detector was a quiet-SLO guard (must not fire when
    /// healthy) or a detection signal.
    pub quiet_slo: bool,
    /// Verdict: quiet-SLO detectors pass iff they never fired; signal
    /// detectors always pass (their firings are measurements).
    pub pass: bool,
}

/// The aggregated health report for one monitored run.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthReport {
    /// Retained window tail (bounded by the sentinel's `max_windows`).
    pub windows: Vec<WindowSample>,
    /// Total windows closed, including any no longer retained.
    pub windows_total: u64,
    /// Every detector firing, in firing order.
    pub events: Vec<HealthEvent>,
    /// Per-detector SLO verdicts.
    pub verdicts: Vec<SloVerdict>,
}

impl HealthReport {
    /// True when every quiet-SLO detector stayed quiet.
    pub fn healthy(&self) -> bool {
        self.verdicts.iter().all(|v| v.pass)
    }

    /// The last closed window, if any (what audit bundles embed).
    pub fn last_window(&self) -> Option<&WindowSample> {
        self.windows.last()
    }

    /// Renders as an [`asc_core::json`] object.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "windows_total".to_string(),
                Value::Num(self.windows_total as f64),
            ),
            (
                "windows".to_string(),
                Value::Array(self.windows.iter().map(|w| w.to_value()).collect()),
            ),
            (
                "events".to_string(),
                Value::Array(self.events.iter().map(|e| e.to_value()).collect()),
            ),
            (
                "verdicts".to_string(),
                Value::Array(
                    self.verdicts
                        .iter()
                        .map(|v| {
                            Value::Object(vec![
                                ("detector".to_string(), Value::Str(v.detector.clone())),
                                ("fired".to_string(), Value::Num(v.fired as f64)),
                                ("quiet_slo".to_string(), Value::Bool(v.quiet_slo)),
                                ("pass".to_string(), Value::Bool(v.pass)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("healthy".to_string(), Value::Bool(self.healthy())),
        ])
    }
}
