//! Continuous fleet-health monitoring for the ASC stack.
//!
//! The fail-stop contract tells an operator that a process died, and the
//! audit bundles tell them why — this crate answers the question between
//! kills: *is the fleet healthy right now?* A [`Sentinel`] attaches to a
//! running [`Scheduler`] and, on slice boundaries, samples every
//! cumulative counter the stack exposes — kernel statistics, per-reason
//! alert counts, shared-cache behaviour and probe counters, batched
//! trap-path counters, and any attached [`asc_metrics`] registries (via
//! the cheap [`asc_metrics::Snapshot::diff`] delta) — into bounded
//! per-window [`WindowSample`]s on the shared virtual clock. A
//! [`Detector`] suite ([`DetectorKind::Threshold`],
//! [`DetectorKind::Ratio`] floors, seeded [`DetectorKind::Ewma`] drift)
//! evaluates each window and emits structured [`HealthEvent`]s with
//! reason codes and firing cycles, aggregated into a [`HealthReport`]
//! with per-detector SLO verdicts.
//!
//! Like the flight recorder and the metrics registry, the sentinel obeys
//! the **no-perturbation rule**: [`Sentinel::observe`] takes the
//! scheduler by shared reference, so monitoring *cannot* feed back into
//! the cost model — charged cycles, statistics, interleaving, and stdout
//! are bit-identical with or without a sentinel attached. Detection
//! latency is therefore an honest measurement: the virtual-clock gap
//! between a fault's arming cycle and the first [`HealthEvent`].

mod detector;
mod report;
mod window;

pub use detector::{Detector, DetectorKind, HealthEvent};
pub use report::{HealthReport, SloVerdict};
pub use window::{Series, WindowSample};

use std::collections::BTreeMap;

use asc_kernel::{BatchStats, KernelStats};
use asc_metrics::Snapshot;
use asc_sched::Scheduler;

use detector::DetectorState;

/// The histogram family the windowed p99 is computed from (recorded by
/// [`asc_kernel::KernelMetrics`] under `path` labels).
const VERIFY_CYCLES_METRIC: &str = "asc_verify_cycles";

/// Sentinel configuration: window geometry and the detector suite.
#[derive(Clone, Debug)]
pub struct SentinelConfig {
    /// Window length on the shared virtual clock. Windows close on the
    /// first observation at or past each boundary, so slices should be
    /// shorter than windows for the geometry to be meaningful.
    pub window_cycles: u64,
    /// Retained window tail (older samples are dropped; totals and
    /// detector state are unaffected).
    pub max_windows: usize,
    /// The detector suite evaluated on every closed window.
    pub detectors: Vec<Detector>,
}

impl SentinelConfig {
    /// A config with the [`Detector::default_suite`] and a 256-window
    /// retained tail.
    pub fn new(window_cycles: u64) -> SentinelConfig {
        SentinelConfig {
            window_cycles,
            max_windows: 256,
            detectors: Detector::default_suite(),
        }
    }

    /// Replaces the detector suite.
    pub fn with_detectors(mut self, detectors: Vec<Detector>) -> SentinelConfig {
        self.detectors = detectors;
        self
    }

    /// Bounds the retained window tail.
    pub fn with_max_windows(mut self, max_windows: usize) -> SentinelConfig {
        self.max_windows = max_windows.max(1);
        self
    }
}

/// Cumulative fleet-wide readings at one point on the virtual clock;
/// two of these bracket a window and their difference is the sample.
#[derive(Clone, Debug)]
struct Cumulative {
    stats: KernelStats,
    batch: BatchStats,
    probes: u64,
    alerts: BTreeMap<&'static str, u64>,
    metrics: Snapshot,
}

impl Cumulative {
    /// Reads every cumulative counter through shared references only.
    fn read(sched: &Scheduler) -> Cumulative {
        let mut alerts: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut metrics = Snapshot::new();
        for proc in sched.processes() {
            for alert in proc.kernel().alerts() {
                *alerts.entry(alert.reason().code()).or_insert(0) += 1;
            }
            if let Some(m) = proc.kernel().metrics() {
                metrics.absorb_registry(m.registry());
            }
        }
        let probes = sched
            .shared_cache()
            .map(|cache| cache.borrow().probes())
            .unwrap_or(0);
        Cumulative {
            stats: sched.aggregate_stats(),
            batch: sched.batch_stats(),
            probes,
            alerts,
            metrics,
        }
    }

    /// The window delta `self − earlier` (saturating: a killed process's
    /// dropped cache namespace can only lower a cumulative reading, and
    /// a clamped zero is the honest floor for a window that lost state).
    fn delta(&self, earlier: &Cumulative, index: u64, start: u64, end: u64) -> WindowSample {
        let d = |a: u64, b: u64| a.saturating_sub(b);
        let alerts: Vec<(&'static str, u64)> = self
            .alerts
            .iter()
            .filter_map(|(code, &n)| {
                let was = earlier.alerts.get(code).copied().unwrap_or(0);
                (n > was).then_some((*code, n - was))
            })
            .collect();
        let alerts_total = alerts.iter().map(|(_, n)| n).sum();
        let verify_p99 = {
            let window = self.metrics.diff(&earlier.metrics);
            let h = window.histogram_across_labels(VERIFY_CYCLES_METRIC);
            (h.count() > 0).then(|| h.quantile(0.99))
        };
        WindowSample {
            index,
            start,
            end,
            syscalls: d(self.stats.syscalls, earlier.stats.syscalls),
            verified: d(self.stats.verified, earlier.stats.verified),
            verify_cycles: d(self.stats.verify_cycles, earlier.stats.verify_cycles),
            warm_hits: d(self.stats.cache_hits, earlier.stats.cache_hits),
            cache_fallbacks: d(self.stats.cache_fallbacks, earlier.stats.cache_fallbacks),
            cache_scrubs: d(self.stats.cache_scrubs, earlier.stats.cache_scrubs),
            probes: d(self.probes, earlier.probes),
            alerts,
            alerts_total,
            batch_windows: d(self.batch.windows, earlier.batch.windows),
            batch_drained: d(self.batch.drained, earlier.batch.drained),
            verify_p99,
            live: 0,
        }
    }
}

/// The fleet-health monitor: windowed telemetry plus a detector suite
/// over one [`Scheduler`].
///
/// Lifecycle: [`Sentinel::attach`] captures the baseline, the drive loop
/// calls [`Sentinel::observe`] after every scheduler step (cheap — one
/// clock comparison — until a window boundary passes), and
/// [`Sentinel::finish`] closes the final partial window. Or use
/// [`Sentinel::drive`] to run a scheduler to completion under
/// observation.
#[derive(Clone, Debug)]
pub struct Sentinel {
    config: SentinelConfig,
    states: Vec<DetectorState>,
    windows: Vec<WindowSample>,
    windows_total: u64,
    events: Vec<HealthEvent>,
    baseline: Cumulative,
    window_start: u64,
    next_boundary: u64,
}

impl Sentinel {
    /// Attaches to `sched`, capturing the baseline at the current clock.
    ///
    /// # Panics
    ///
    /// Panics if `config.window_cycles` is zero.
    pub fn attach(sched: &Scheduler, config: SentinelConfig) -> Sentinel {
        assert!(config.window_cycles > 0, "window_cycles must be positive");
        let clock = sched.clock();
        let next_boundary = (clock / config.window_cycles + 1) * config.window_cycles;
        Sentinel {
            states: config
                .detectors
                .iter()
                .map(|_| DetectorState::default())
                .collect(),
            baseline: Cumulative::read(sched),
            window_start: clock,
            next_boundary,
            config,
            windows: Vec::new(),
            windows_total: 0,
            events: Vec::new(),
        }
    }

    /// One observation: closes a window (samples, evaluates detectors)
    /// iff the clock has reached the next boundary. Call after every
    /// scheduler step; between boundaries this is one comparison.
    pub fn observe(&mut self, sched: &Scheduler) {
        let clock = sched.clock();
        if clock < self.next_boundary {
            return;
        }
        self.close_window(sched, clock);
        self.next_boundary = (clock / self.config.window_cycles + 1) * self.config.window_cycles;
    }

    /// Closes the final partial window, if any time has elapsed since the
    /// last close. Call once when the run ends.
    pub fn finish(&mut self, sched: &Scheduler) {
        let clock = sched.clock();
        if clock > self.window_start {
            self.close_window(sched, clock);
        }
    }

    /// Runs `sched` to completion under observation and returns the
    /// sentinel with its final window closed.
    pub fn drive(sched: &mut asc_sched::Scheduler, config: SentinelConfig) -> Sentinel {
        let mut sentinel = Sentinel::attach(sched, config);
        while sched.step().is_some() {
            sentinel.observe(sched);
        }
        sentinel.finish(sched);
        sentinel
    }

    fn close_window(&mut self, sched: &Scheduler, clock: u64) {
        let current = Cumulative::read(sched);
        let mut sample =
            current.delta(&self.baseline, self.windows_total, self.window_start, clock);
        sample.live = sched
            .processes()
            .iter()
            .filter(|p| p.state().is_runnable())
            .count() as u64;
        for (det, state) in self.config.detectors.iter().zip(self.states.iter_mut()) {
            if let Some(event) = state.evaluate(det, &sample) {
                self.events.push(event);
            }
        }
        self.windows.push(sample);
        if self.windows.len() > self.config.max_windows {
            self.windows.remove(0);
        }
        self.windows_total += 1;
        self.baseline = current;
        self.window_start = clock;
    }

    /// The retained window tail, oldest first.
    pub fn windows(&self) -> &[WindowSample] {
        &self.windows
    }

    /// Total windows closed (including any no longer retained).
    pub fn windows_total(&self) -> u64 {
        self.windows_total
    }

    /// Every detector firing so far, in firing order.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// The first health event whose firing cycle is at or after `clock` —
    /// the detection a fault armed at `clock` is matched against.
    pub fn first_event_at_or_after(&self, clock: u64) -> Option<&HealthEvent> {
        self.events.iter().find(|e| e.fired_clock >= clock)
    }

    /// The aggregated report: retained windows, events, SLO verdicts.
    pub fn report(&self) -> HealthReport {
        let verdicts = self
            .config
            .detectors
            .iter()
            .zip(self.states.iter())
            .map(|(det, state)| SloVerdict {
                detector: det.name.clone(),
                fired: state.fired,
                quiet_slo: det.quiet_slo,
                pass: !det.quiet_slo || state.fired == 0,
            })
            .collect();
        HealthReport {
            windows: self.windows.clone(),
            windows_total: self.windows_total,
            events: self.events.clone(),
            verdicts,
        }
    }
}
