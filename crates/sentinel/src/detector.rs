//! The anomaly detector suite: per-window predicates over [`Series`],
//! emitting structured [`HealthEvent`]s with reason codes and firing
//! cycles.

use asc_core::json::Value;

use crate::window::{Series, WindowSample};

/// How a detector decides whether a window is anomalous.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DetectorKind {
    /// Fires when the series exceeds `max`. A `max` of 0 fires on any
    /// nonzero reading — the "this must never happen" shape (alerts,
    /// cache fallbacks, scrubs).
    Threshold {
        /// Largest healthy reading.
        max: f64,
    },
    /// Fires when the series drops below `min`, after `warmup` evaluable
    /// windows have established the steady state (a cold cache legally
    /// starts at a 0% hit ratio).
    Ratio {
        /// Smallest healthy reading.
        min: f64,
        /// Evaluable windows ignored before enforcement.
        warmup: usize,
    },
    /// Fires when the series drifts more than `band` (relative) away
    /// from a seeded exponentially-weighted moving average. The EWMA is
    /// seeded deterministically with the mean of the first `warmup`
    /// evaluable windows, then updated as `ewma = α·v + (1−α)·ewma`.
    Ewma {
        /// Smoothing factor α in `(0, 1]`.
        alpha: f64,
        /// Evaluable windows averaged into the seed.
        warmup: usize,
        /// Relative drift band (0.5 = fire beyond ±50%).
        band: f64,
    },
}

/// A named detector: one [`Series`] watched by one [`DetectorKind`].
#[derive(Clone, Debug, PartialEq)]
pub struct Detector {
    /// Stable detector name (reports, SLO verdicts).
    pub name: String,
    /// The per-window series this detector watches.
    pub series: Series,
    /// The anomaly predicate.
    pub kind: DetectorKind,
    /// SLO: when true, a healthy fleet must keep this detector quiet —
    /// any firing fails the verdict. Detectors used purely as detection
    /// *signals* (fault campaigns) set this false.
    pub quiet_slo: bool,
    /// Minimum underlying observations ([`Series::samples`]) a window
    /// needs before this detector evaluates it: statistical detectors
    /// gate out low-traffic windows (run tails, drained fleets) whose
    /// ratios are noise, while count-style series are always evaluable.
    pub min_samples: u64,
}

impl Detector {
    /// A threshold detector (fires above `max`), quiet-SLO by default.
    pub fn threshold(name: &str, series: Series, max: f64) -> Detector {
        Detector {
            name: name.to_string(),
            series,
            kind: DetectorKind::Threshold { max },
            quiet_slo: true,
            min_samples: 0,
        }
    }

    /// A ratio-floor detector (fires below `min` after `warmup` windows).
    pub fn ratio(name: &str, series: Series, min: f64, warmup: usize) -> Detector {
        Detector {
            name: name.to_string(),
            series,
            kind: DetectorKind::Ratio { min, warmup },
            quiet_slo: true,
            min_samples: 0,
        }
    }

    /// A seeded-EWMA drift detector.
    pub fn ewma(name: &str, series: Series, alpha: f64, warmup: usize, band: f64) -> Detector {
        Detector {
            name: name.to_string(),
            series,
            kind: DetectorKind::Ewma {
                alpha,
                warmup,
                band,
            },
            quiet_slo: true,
            min_samples: 0,
        }
    }

    /// Marks this detector as a detection signal rather than a quiet-SLO
    /// guard (its firings do not fail the health verdict).
    pub fn signal(mut self) -> Detector {
        self.quiet_slo = false;
        self
    }

    /// Requires at least `n` underlying observations in a window before
    /// evaluating it (see [`Series::samples`]).
    pub fn with_min_samples(mut self, n: u64) -> Detector {
        self.min_samples = n;
        self
    }

    /// The default fleet-health suite: every operator-visible failure
    /// surface the stack exposes, tuned so a healthy steady-state fleet
    /// keeps all of them quiet.
    ///
    /// * `alert-burst` — any [`asc_kernel::Alert`] (every kill class
    ///   raises one before the kill lands);
    /// * `cache-fallback` — any stale/poisoned-entry degradation
    ///   (cache-poison faults);
    /// * `cache-scrub` — any impossible-epoch scrub (epoch-skew faults);
    /// * `warm-hit-floor` — warm-path collapse after cache warmup;
    /// * `verify-drift` — per-call verify-cost drift off its EWMA;
    /// * `probe-contention` — shared-cache probe amplification.
    pub fn default_suite() -> Vec<Detector> {
        vec![
            Detector::threshold("alert-burst", Series::AlertRate, 0.0),
            Detector::threshold("cache-fallback", Series::CacheFallbacks, 0.0),
            Detector::threshold("cache-scrub", Series::CacheScrubs, 0.0),
            Detector::ratio("warm-hit-floor", Series::WarmHitRatio, 0.05, 2).with_min_samples(32),
            Detector::ewma("verify-drift", Series::VerifyCyclesPerCall, 0.3, 3, 0.5)
                .with_min_samples(32),
            Detector::threshold("probe-contention", Series::ProbesPerCall, 8.0)
                .with_min_samples(32),
        ]
    }

    /// The minimal detection-signal suite a fault campaign needs: the
    /// three never-fires-when-healthy detectors covering every fault
    /// surface (kills alert, cache poison falls back, epoch skew
    /// scrubs), marked as signals so firings measure latency instead of
    /// failing an SLO.
    pub fn signal_suite() -> Vec<Detector> {
        vec![
            Detector::threshold("alert-burst", Series::AlertRate, 0.0).signal(),
            Detector::threshold("cache-fallback", Series::CacheFallbacks, 0.0).signal(),
            Detector::threshold("cache-scrub", Series::CacheScrubs, 0.0).signal(),
        ]
    }
}

/// Per-detector mutable evaluation state, kept by the sentinel.
#[derive(Clone, Debug, Default)]
pub(crate) struct DetectorState {
    /// Evaluable windows seen so far.
    seen: usize,
    /// Values collected while seeding an EWMA.
    warmup_values: Vec<f64>,
    /// The seeded EWMA, once warm.
    ewma: Option<f64>,
    /// Firings so far.
    pub(crate) fired: u64,
}

impl DetectorState {
    /// Evaluates `detector` over `sample`, updating state; returns the
    /// event if it fired.
    pub(crate) fn evaluate(
        &mut self,
        detector: &Detector,
        sample: &WindowSample,
    ) -> Option<HealthEvent> {
        if detector.series.samples(sample) < detector.min_samples {
            return None;
        }
        let value = detector.series.value(sample)?;
        self.seen += 1;
        let (fired, bound, reason) = match detector.kind {
            DetectorKind::Threshold { max } => (value > max, max, "above-threshold"),
            DetectorKind::Ratio { min, warmup } => {
                if self.seen <= warmup {
                    return None;
                }
                (value < min, min, "below-ratio-floor")
            }
            DetectorKind::Ewma {
                alpha,
                warmup,
                band,
            } => match self.ewma {
                None => {
                    self.warmup_values.push(value);
                    if self.warmup_values.len() >= warmup {
                        let mean = self.warmup_values.iter().sum::<f64>()
                            / self.warmup_values.len() as f64;
                        self.ewma = Some(mean);
                        self.warmup_values.clear();
                    }
                    return None;
                }
                Some(ewma) => {
                    let drift = (value - ewma).abs();
                    let fired = drift > band * ewma.max(1.0);
                    self.ewma = Some(alpha * value + (1.0 - alpha) * ewma);
                    (fired, ewma, "ewma-drift")
                }
            },
        };
        if !fired {
            return None;
        }
        self.fired += 1;
        Some(HealthEvent {
            detector: detector.name.clone(),
            series: detector.series,
            window: sample.index,
            fired_clock: sample.end,
            value,
            bound,
            reason,
        })
    }
}

/// One detector firing: the structured, operator-visible health signal.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthEvent {
    /// Name of the detector that fired.
    pub detector: String,
    /// The series it was watching.
    pub series: Series,
    /// Window index the anomalous reading came from.
    pub window: u64,
    /// Virtual clock at the window close that fired the detector — the
    /// timestamp detection latency is measured against.
    pub fired_clock: u64,
    /// The anomalous reading.
    pub value: f64,
    /// The bound it violated (threshold, floor, or EWMA reference).
    pub bound: f64,
    /// Stable kebab-case reason code (`above-threshold`,
    /// `below-ratio-floor`, `ewma-drift`).
    pub reason: &'static str,
}

impl HealthEvent {
    /// Renders as an [`asc_core::json`] object.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("detector".to_string(), Value::Str(self.detector.clone())),
            (
                "series".to_string(),
                Value::Str(self.series.name().to_string()),
            ),
            ("window".to_string(), Value::Num(self.window as f64)),
            (
                "fired_clock".to_string(),
                Value::Num(self.fired_clock as f64),
            ),
            ("value".to_string(), Value::Num(self.value)),
            ("bound".to_string(), Value::Num(self.bound)),
            ("reason".to_string(), Value::Str(self.reason.to_string())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_with_alerts(index: u64, alerts: u64) -> WindowSample {
        WindowSample {
            index,
            start: index * 1000,
            end: (index + 1) * 1000,
            alerts_total: alerts,
            ..WindowSample::default()
        }
    }

    #[test]
    fn threshold_fires_on_any_alert() {
        let det = Detector::threshold("alert-burst", Series::AlertRate, 0.0);
        let mut state = DetectorState::default();
        assert!(state.evaluate(&det, &window_with_alerts(0, 0)).is_none());
        let event = state
            .evaluate(&det, &window_with_alerts(1, 3))
            .expect("alerts fire the detector");
        assert_eq!(event.reason, "above-threshold");
        assert_eq!(event.fired_clock, 2000);
        assert_eq!(event.value, 3.0);
        assert_eq!(state.fired, 1);
    }

    #[test]
    fn ratio_respects_warmup_then_enforces() {
        let det = Detector::ratio("warm-hit-floor", Series::WarmHitRatio, 0.5, 2);
        let mut state = DetectorState::default();
        let cold = WindowSample {
            verified: 10,
            warm_hits: 0,
            ..WindowSample::default()
        };
        // Two warmup windows pass silently despite the 0% ratio.
        assert!(state.evaluate(&det, &cold).is_none());
        assert!(state.evaluate(&det, &cold).is_none());
        let event = state.evaluate(&det, &cold).expect("floor enforced");
        assert_eq!(event.reason, "below-ratio-floor");
        // Not-evaluable windows (nothing verified) never count or fire.
        let idle = WindowSample::default();
        assert!(state.evaluate(&det, &idle).is_none());
    }

    #[test]
    fn ewma_seeds_then_detects_drift() {
        let det = Detector::ewma("verify-drift", Series::VerifyCyclesPerCall, 0.5, 2, 0.5);
        let mut state = DetectorState::default();
        let per_call = |cycles: u64| WindowSample {
            verified: 1,
            verify_cycles: cycles,
            ..WindowSample::default()
        };
        // Warmup: seeds EWMA with mean(100, 120) = 110.
        assert!(state.evaluate(&det, &per_call(100)).is_none());
        assert!(state.evaluate(&det, &per_call(120)).is_none());
        // 112 is within ±50% of 110: quiet.
        assert!(state.evaluate(&det, &per_call(112)).is_none());
        // 400 is far outside the band: drift.
        let event = state.evaluate(&det, &per_call(400)).expect("drift fires");
        assert_eq!(event.reason, "ewma-drift");
        assert!(
            event.bound > 100.0 && event.bound < 120.0,
            "{}",
            event.bound
        );
    }

    #[test]
    fn default_suite_is_quiet_on_an_idle_window() {
        let mut states: Vec<DetectorState> = Detector::default_suite()
            .iter()
            .map(|_| DetectorState::default())
            .collect();
        let idle = window_with_alerts(0, 0);
        for (det, state) in Detector::default_suite().iter().zip(states.iter_mut()) {
            assert!(
                state.evaluate(det, &idle).is_none(),
                "{} fired on an idle window",
                det.name
            );
        }
    }
}
