//! Windowed fleet telemetry: one [`WindowSample`] per virtual-clock
//! window, holding the *delta* of every cumulative counter the stack
//! exposes, plus the derived [`Series`] the detectors evaluate.

use asc_core::json::Value;

/// One closed telemetry window: what the fleet did between two points on
/// the shared virtual clock. All counter fields are deltas over the
/// window; ratios are derived on demand through [`Series::value`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WindowSample {
    /// Zero-based window number since attachment (monotone even when the
    /// retained tail is bounded).
    pub index: u64,
    /// Virtual clock when the window opened.
    pub start: u64,
    /// Virtual clock when the window closed (the firing cycle for any
    /// detector that triggers on this window).
    pub end: u64,
    /// Syscalls trapped fleet-wide this window.
    pub syscalls: u64,
    /// Calls that went through ASC verification this window.
    pub verified: u64,
    /// Verification cycles charged this window (cold + warm).
    pub verify_cycles: u64,
    /// Verifications served warm from the verified-call cache.
    pub warm_hits: u64,
    /// Stale/poisoned cache entries that degraded to the cold path.
    pub cache_fallbacks: u64,
    /// Poisoned state entries scrubbed for claiming a future epoch.
    pub cache_scrubs: u64,
    /// Shared-cache shard probes (0 without a shared cache).
    pub probes: u64,
    /// Alerts raised this window, by stable reason code, sorted; only
    /// nonzero deltas appear.
    pub alerts: Vec<(&'static str, u64)>,
    /// Total alerts raised this window.
    pub alerts_total: u64,
    /// Batch windows opened by the batched trap path this window.
    pub batch_windows: u64,
    /// Calls drained through batched verification this window.
    pub batch_drained: u64,
    /// Windowed p99 of per-call verify cycles, from the attached metrics
    /// registries' histogram delta; `None` when no registry is attached
    /// or nothing verified this window.
    pub verify_p99: Option<u64>,
    /// Runnable processes when the window closed (a level, not a delta).
    pub live: u64,
}

impl WindowSample {
    /// Renders as an [`asc_core::json`] object (health dashboards, audit
    /// bundle embedding).
    pub fn to_value(&self) -> Value {
        let alerts = self
            .alerts
            .iter()
            .map(|(code, n)| {
                Value::Object(vec![
                    ("reason".to_string(), Value::Str(code.to_string())),
                    ("count".to_string(), Value::Num(*n as f64)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("window".to_string(), Value::Num(self.index as f64)),
            ("start".to_string(), Value::Num(self.start as f64)),
            ("end".to_string(), Value::Num(self.end as f64)),
            ("syscalls".to_string(), Value::Num(self.syscalls as f64)),
            ("verified".to_string(), Value::Num(self.verified as f64)),
            (
                "verify_cycles".to_string(),
                Value::Num(self.verify_cycles as f64),
            ),
            ("warm_hits".to_string(), Value::Num(self.warm_hits as f64)),
            (
                "cache_fallbacks".to_string(),
                Value::Num(self.cache_fallbacks as f64),
            ),
            (
                "cache_scrubs".to_string(),
                Value::Num(self.cache_scrubs as f64),
            ),
            ("probes".to_string(), Value::Num(self.probes as f64)),
            ("alerts".to_string(), Value::Array(alerts)),
            (
                "alerts_total".to_string(),
                Value::Num(self.alerts_total as f64),
            ),
            (
                "batch_windows".to_string(),
                Value::Num(self.batch_windows as f64),
            ),
            (
                "batch_drained".to_string(),
                Value::Num(self.batch_drained as f64),
            ),
            ("live".to_string(), Value::Num(self.live as f64)),
        ];
        if let Some(p99) = self.verify_p99 {
            fields.push(("verify_p99".to_string(), Value::Num(p99 as f64)));
        }
        Value::Object(fields)
    }
}

/// A derived per-window time series a detector can watch. Each series
/// reduces a [`WindowSample`] to one number; series whose denominator is
/// zero this window are *not evaluable* and detectors skip them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Series {
    /// Alerts raised per window (any nonzero burst is operator-visible).
    AlertRate,
    /// Warm cache hits / verified calls.
    WarmHitRatio,
    /// Verify cycles / verified calls.
    VerifyCyclesPerCall,
    /// Stale-entry fallbacks per window.
    CacheFallbacks,
    /// Epoch scrubs per window.
    CacheScrubs,
    /// Shared-cache shard probes / syscalls.
    ProbesPerCall,
    /// Calls drained per batch window (batched trap-path fill).
    BatchFill,
    /// Windowed p99 verify cycles (needs attached metrics registries).
    VerifyP99,
}

impl Series {
    /// Stable kebab-case name (reports, JSON export).
    pub fn name(self) -> &'static str {
        match self {
            Series::AlertRate => "alert-rate",
            Series::WarmHitRatio => "warm-hit-ratio",
            Series::VerifyCyclesPerCall => "verify-cycles-per-call",
            Series::CacheFallbacks => "cache-fallbacks",
            Series::CacheScrubs => "cache-scrubs",
            Series::ProbesPerCall => "probes-per-call",
            Series::BatchFill => "batch-fill",
            Series::VerifyP99 => "verify-p99",
        }
    }

    /// How many underlying observations back this series' reading over
    /// `sample` — what a detector's `min_samples` gate compares against.
    /// Count-style series (alerts, fallbacks, scrubs) return `u64::MAX`:
    /// they are exact counts, meaningful at any traffic level, and must
    /// stay evaluable in the quiet window where a fault killed the fleet.
    pub fn samples(self, sample: &WindowSample) -> u64 {
        match self {
            Series::AlertRate | Series::CacheFallbacks | Series::CacheScrubs => u64::MAX,
            Series::WarmHitRatio | Series::VerifyCyclesPerCall | Series::VerifyP99 => {
                sample.verified
            }
            Series::ProbesPerCall => sample.syscalls,
            Series::BatchFill => sample.batch_windows,
        }
    }

    /// The series' value over `sample`, or `None` when it is not
    /// evaluable this window (zero denominator, or no metrics attached).
    pub fn value(self, sample: &WindowSample) -> Option<f64> {
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                None
            } else {
                Some(num as f64 / den as f64)
            }
        };
        match self {
            Series::AlertRate => Some(sample.alerts_total as f64),
            Series::WarmHitRatio => ratio(sample.warm_hits, sample.verified),
            Series::VerifyCyclesPerCall => ratio(sample.verify_cycles, sample.verified),
            Series::CacheFallbacks => Some(sample.cache_fallbacks as f64),
            Series::CacheScrubs => Some(sample.cache_scrubs as f64),
            Series::ProbesPerCall => ratio(sample.probes, sample.syscalls),
            Series::BatchFill => ratio(sample.batch_drained, sample.batch_windows),
            Series::VerifyP99 => sample.verify_p99.map(|v| v as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WindowSample {
        WindowSample {
            index: 3,
            start: 1000,
            end: 2000,
            syscalls: 50,
            verified: 40,
            verify_cycles: 8000,
            warm_hits: 30,
            cache_fallbacks: 2,
            cache_scrubs: 1,
            probes: 100,
            alerts: vec![("bad-call-mac", 2)],
            alerts_total: 2,
            batch_windows: 5,
            batch_drained: 40,
            verify_p99: Some(400),
            live: 8,
        }
    }

    #[test]
    fn series_reduce_the_sample() {
        let s = sample();
        assert_eq!(Series::AlertRate.value(&s), Some(2.0));
        assert_eq!(Series::WarmHitRatio.value(&s), Some(0.75));
        assert_eq!(Series::VerifyCyclesPerCall.value(&s), Some(200.0));
        assert_eq!(Series::ProbesPerCall.value(&s), Some(2.0));
        assert_eq!(Series::BatchFill.value(&s), Some(8.0));
        assert_eq!(Series::VerifyP99.value(&s), Some(400.0));
    }

    #[test]
    fn zero_denominators_are_not_evaluable() {
        let empty = WindowSample::default();
        assert_eq!(Series::WarmHitRatio.value(&empty), None);
        assert_eq!(Series::VerifyCyclesPerCall.value(&empty), None);
        assert_eq!(Series::ProbesPerCall.value(&empty), None);
        assert_eq!(Series::BatchFill.value(&empty), None);
        assert_eq!(Series::VerifyP99.value(&empty), None);
        // Count series are always evaluable: zero is a healthy reading.
        assert_eq!(Series::AlertRate.value(&empty), Some(0.0));
        assert_eq!(Series::CacheFallbacks.value(&empty), Some(0.0));
    }

    #[test]
    fn sample_renders_to_json() {
        let v = sample().to_value();
        let text = v.to_pretty();
        assert!(text.contains("\"verify_p99\""), "{text}");
        assert!(text.contains("bad-call-mac"), "{text}");
        let parsed = Value::parse(&text).expect("window JSON parses");
        assert_eq!(parsed, v);
    }
}
