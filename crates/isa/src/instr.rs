//! SVM32 instruction encoding and decoding.
//!
//! Every instruction is exactly [`INSTR_LEN`] = 8 bytes:
//! `opcode ‖ rd ‖ rs1 ‖ rs2 ‖ imm (4 bytes LE)`. Address operands always
//! live in `imm`, which is what makes relocation-driven binary rewriting
//! tractable for the installer.

use crate::reg::Reg;

/// Encoded length of every SVM32 instruction, in bytes.
pub const INSTR_LEN: usize = 8;

/// SVM32 opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// No operation.
    Nop = 0,
    /// Stop the machine (exit with R0 as status if no `exit` syscall ran).
    Halt = 1,
    /// `rd := imm`.
    Movi = 2,
    /// `rd := rs1`.
    Mov = 3,
    /// `rd := rs1 + rs2`.
    Add = 4,
    /// `rd := rs1 - rs2`.
    Sub = 5,
    /// `rd := rs1 * rs2` (wrapping).
    Mul = 6,
    /// `rd := rs1 / rs2` (unsigned; 0 if rs2 == 0).
    Divu = 7,
    /// `rd := rs1 % rs2` (unsigned; 0 if rs2 == 0).
    Remu = 8,
    /// `rd := rs1 & rs2`.
    And = 9,
    /// `rd := rs1 | rs2`.
    Or = 10,
    /// `rd := rs1 ^ rs2`.
    Xor = 11,
    /// `rd := rs1 << (rs2 & 31)`.
    Shl = 12,
    /// `rd := rs1 >> (rs2 & 31)` (logical).
    Shr = 13,
    /// `rd := rs1 + imm` (wrapping; imm is two's complement).
    Addi = 14,
    /// `rd := rs1 & imm`.
    Andi = 15,
    /// `rd := rs1 | imm`.
    Ori = 16,
    /// `rd := rs1 ^ imm`.
    Xori = 17,
    /// `rd := rs1 << (imm & 31)`.
    Shli = 18,
    /// `rd := rs1 >> (imm & 31)` (logical).
    Shri = 19,
    /// `rd := rs1 * imm` (wrapping).
    Muli = 20,
    /// `rd := mem32[rs1 + imm]`.
    Ldw = 21,
    /// `mem32[rs1 + imm] := rs2`.
    Stw = 22,
    /// `rd := zext(mem8[rs1 + imm])`.
    Ldb = 23,
    /// `mem8[rs1 + imm] := rs2 & 0xff`.
    Stb = 24,
    /// `sp -= 4; mem32[sp] := rs1`.
    Push = 25,
    /// `rd := mem32[sp]; sp += 4`.
    Pop = 26,
    /// `pc := imm` (absolute).
    Jmp = 27,
    /// `pc := rs1` (indirect jump).
    Jr = 28,
    /// `if rs1 == rs2 then pc := imm`.
    Beq = 29,
    /// `if rs1 != rs2 then pc := imm`.
    Bne = 30,
    /// `if (i32)rs1 < (i32)rs2 then pc := imm`.
    Blt = 31,
    /// `if (i32)rs1 >= (i32)rs2 then pc := imm`.
    Bge = 32,
    /// `if rs1 < rs2 then pc := imm` (unsigned).
    Bltu = 33,
    /// `if rs1 >= rs2 then pc := imm` (unsigned).
    Bgeu = 34,
    /// `sp -= 4; mem32[sp] := pc + 8; pc := imm`.
    Call = 35,
    /// `sp -= 4; mem32[sp] := pc + 8; pc := rs1` (indirect call).
    Callr = 36,
    /// `pc := mem32[sp]; sp += 4`.
    Ret = 37,
    /// Trap into the kernel; syscall number in `R0` (the `int 0x80`
    /// analogue).
    Syscall = 38,
}

impl Opcode {
    const MAX: u8 = Opcode::Syscall as u8;

    /// Decodes an opcode byte.
    pub fn from_byte(b: u8) -> Option<Opcode> {
        if b > Opcode::MAX {
            return None;
        }
        // SAFETY-free version: match through a table.
        Some(match b {
            0 => Opcode::Nop,
            1 => Opcode::Halt,
            2 => Opcode::Movi,
            3 => Opcode::Mov,
            4 => Opcode::Add,
            5 => Opcode::Sub,
            6 => Opcode::Mul,
            7 => Opcode::Divu,
            8 => Opcode::Remu,
            9 => Opcode::And,
            10 => Opcode::Or,
            11 => Opcode::Xor,
            12 => Opcode::Shl,
            13 => Opcode::Shr,
            14 => Opcode::Addi,
            15 => Opcode::Andi,
            16 => Opcode::Ori,
            17 => Opcode::Xori,
            18 => Opcode::Shli,
            19 => Opcode::Shri,
            20 => Opcode::Muli,
            21 => Opcode::Ldw,
            22 => Opcode::Stw,
            23 => Opcode::Ldb,
            24 => Opcode::Stb,
            25 => Opcode::Push,
            26 => Opcode::Pop,
            27 => Opcode::Jmp,
            28 => Opcode::Jr,
            29 => Opcode::Beq,
            30 => Opcode::Bne,
            31 => Opcode::Blt,
            32 => Opcode::Bge,
            33 => Opcode::Bltu,
            34 => Opcode::Bgeu,
            35 => Opcode::Call,
            36 => Opcode::Callr,
            37 => Opcode::Ret,
            38 => Opcode::Syscall,
            _ => unreachable!("guarded by MAX"),
        })
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Nop => "nop",
            Opcode::Halt => "halt",
            Opcode::Movi => "movi",
            Opcode::Mov => "mov",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Divu => "divu",
            Opcode::Remu => "remu",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::Addi => "addi",
            Opcode::Andi => "andi",
            Opcode::Ori => "ori",
            Opcode::Xori => "xori",
            Opcode::Shli => "shli",
            Opcode::Shri => "shri",
            Opcode::Muli => "muli",
            Opcode::Ldw => "ldw",
            Opcode::Stw => "stw",
            Opcode::Ldb => "ldb",
            Opcode::Stb => "stb",
            Opcode::Push => "push",
            Opcode::Pop => "pop",
            Opcode::Jmp => "jmp",
            Opcode::Jr => "jr",
            Opcode::Beq => "beq",
            Opcode::Bne => "bne",
            Opcode::Blt => "blt",
            Opcode::Bge => "bge",
            Opcode::Bltu => "bltu",
            Opcode::Bgeu => "bgeu",
            Opcode::Call => "call",
            Opcode::Callr => "callr",
            Opcode::Ret => "ret",
            Opcode::Syscall => "syscall",
        }
    }

    /// Whether this opcode ends a basic block (branches, jumps, calls,
    /// returns, traps, halt).
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Opcode::Jmp
                | Opcode::Jr
                | Opcode::Beq
                | Opcode::Bne
                | Opcode::Blt
                | Opcode::Bge
                | Opcode::Bltu
                | Opcode::Bgeu
                | Opcode::Call
                | Opcode::Callr
                | Opcode::Ret
                | Opcode::Halt
                | Opcode::Syscall
        )
    }

    /// Whether `imm` holds a code address that must carry a relocation when
    /// it refers to a label.
    pub fn imm_is_code_target(self) -> bool {
        matches!(
            self,
            Opcode::Jmp
                | Opcode::Beq
                | Opcode::Bne
                | Opcode::Blt
                | Opcode::Bge
                | Opcode::Bltu
                | Opcode::Bgeu
                | Opcode::Call
        )
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(self) -> bool {
        matches!(
            self,
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge | Opcode::Bltu | Opcode::Bgeu
        )
    }
}

/// A decoded SVM32 instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Operation.
    pub op: Opcode,
    /// Destination register.
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Immediate / address operand.
    pub imm: u32,
}

/// Error decoding an instruction from raw bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer than 8 bytes available.
    Truncated,
    /// Unknown opcode byte — the region is not valid SVM32 code.
    BadOpcode(u8),
    /// Register field out of range.
    BadRegister(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction truncated"),
            DecodeError::BadOpcode(b) => write!(f, "invalid opcode byte {b:#04x}"),
            DecodeError::BadRegister(b) => write!(f, "invalid register byte {b:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Instruction {
    fn raw(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg, imm: u32) -> Instruction {
        Instruction {
            op,
            rd,
            rs1,
            rs2,
            imm,
        }
    }

    /// `nop`.
    pub fn nop() -> Instruction {
        Self::raw(Opcode::Nop, Reg::R0, Reg::R0, Reg::R0, 0)
    }

    /// `halt`.
    pub fn halt() -> Instruction {
        Self::raw(Opcode::Halt, Reg::R0, Reg::R0, Reg::R0, 0)
    }

    /// `rd := imm`.
    pub fn movi(rd: Reg, imm: u32) -> Instruction {
        Self::raw(Opcode::Movi, rd, Reg::R0, Reg::R0, imm)
    }

    /// `rd := rs1`.
    pub fn mov(rd: Reg, rs1: Reg) -> Instruction {
        Self::raw(Opcode::Mov, rd, rs1, Reg::R0, 0)
    }

    /// Three-register ALU operation.
    pub fn alu(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> Instruction {
        Self::raw(op, rd, rs1, rs2, 0)
    }

    /// Register-immediate ALU operation.
    pub fn alui(op: Opcode, rd: Reg, rs1: Reg, imm: u32) -> Instruction {
        Self::raw(op, rd, rs1, Reg::R0, imm)
    }

    /// `rd := rs1 + imm`.
    pub fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instruction {
        Self::alui(Opcode::Addi, rd, rs1, imm as u32)
    }

    /// `rd := mem32[rs1 + imm]`.
    pub fn ldw(rd: Reg, rs1: Reg, imm: i32) -> Instruction {
        Self::raw(Opcode::Ldw, rd, rs1, Reg::R0, imm as u32)
    }

    /// `mem32[rs1 + imm] := rs2`.
    pub fn stw(rs1: Reg, imm: i32, rs2: Reg) -> Instruction {
        Self::raw(Opcode::Stw, Reg::R0, rs1, rs2, imm as u32)
    }

    /// `rd := zext(mem8[rs1 + imm])`.
    pub fn ldb(rd: Reg, rs1: Reg, imm: i32) -> Instruction {
        Self::raw(Opcode::Ldb, rd, rs1, Reg::R0, imm as u32)
    }

    /// `mem8[rs1 + imm] := rs2`.
    pub fn stb(rs1: Reg, imm: i32, rs2: Reg) -> Instruction {
        Self::raw(Opcode::Stb, Reg::R0, rs1, rs2, imm as u32)
    }

    /// `push rs1`.
    pub fn push(rs1: Reg) -> Instruction {
        Self::raw(Opcode::Push, Reg::R0, rs1, Reg::R0, 0)
    }

    /// `pop rd`.
    pub fn pop(rd: Reg) -> Instruction {
        Self::raw(Opcode::Pop, rd, Reg::R0, Reg::R0, 0)
    }

    /// `jmp imm`.
    pub fn jmp(target: u32) -> Instruction {
        Self::raw(Opcode::Jmp, Reg::R0, Reg::R0, Reg::R0, target)
    }

    /// `jr rs1`.
    pub fn jr(rs1: Reg) -> Instruction {
        Self::raw(Opcode::Jr, Reg::R0, rs1, Reg::R0, 0)
    }

    /// Conditional branch.
    pub fn branch(op: Opcode, rs1: Reg, rs2: Reg, target: u32) -> Instruction {
        debug_assert!(op.is_cond_branch());
        Self::raw(op, Reg::R0, rs1, rs2, target)
    }

    /// `call imm`.
    pub fn call(target: u32) -> Instruction {
        Self::raw(Opcode::Call, Reg::R0, Reg::R0, Reg::R0, target)
    }

    /// `callr rs1`.
    pub fn callr(rs1: Reg) -> Instruction {
        Self::raw(Opcode::Callr, Reg::R0, rs1, Reg::R0, 0)
    }

    /// `ret`.
    pub fn ret() -> Instruction {
        Self::raw(Opcode::Ret, Reg::R0, Reg::R0, Reg::R0, 0)
    }

    /// `syscall`.
    pub fn syscall() -> Instruction {
        Self::raw(Opcode::Syscall, Reg::R0, Reg::R0, Reg::R0, 0)
    }

    /// Encodes to the fixed 8-byte format.
    pub fn encode(&self) -> [u8; INSTR_LEN] {
        let mut out = [0u8; INSTR_LEN];
        out[0] = self.op as u8;
        out[1] = self.rd.byte();
        out[2] = self.rs1.byte();
        out[3] = self.rs2.byte();
        out[4..].copy_from_slice(&self.imm.to_le_bytes());
        out
    }

    /// Decodes from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, an unknown opcode byte, or an
    /// out-of-range register field.
    pub fn decode(bytes: &[u8]) -> Result<Instruction, DecodeError> {
        if bytes.len() < INSTR_LEN {
            return Err(DecodeError::Truncated);
        }
        let op = Opcode::from_byte(bytes[0]).ok_or(DecodeError::BadOpcode(bytes[0]))?;
        let rd = Reg::try_new(bytes[1]).ok_or(DecodeError::BadRegister(bytes[1]))?;
        let rs1 = Reg::try_new(bytes[2]).ok_or(DecodeError::BadRegister(bytes[2]))?;
        let rs2 = Reg::try_new(bytes[3]).ok_or(DecodeError::BadRegister(bytes[3]))?;
        let imm = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        Ok(Instruction {
            op,
            rd,
            rs1,
            rs2,
            imm,
        })
    }

    /// Signed view of the immediate.
    pub fn simm(&self) -> i32 {
        self.imm as i32
    }
}

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use Opcode::*;
        let m = self.op.mnemonic();
        match self.op {
            Nop | Halt | Ret | Syscall => write!(f, "{m}"),
            Movi => write!(f, "{m} {}, {:#x}", self.rd, self.imm),
            Mov => write!(f, "{m} {}, {}", self.rd, self.rs1),
            Add | Sub | Mul | Divu | Remu | And | Or | Xor | Shl | Shr => {
                write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.rs2)
            }
            Addi | Andi | Ori | Xori | Shli | Shri | Muli => {
                write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.simm())
            }
            Ldw | Ldb => write!(f, "{m} {}, [{}{:+}]", self.rd, self.rs1, self.simm()),
            Stw | Stb => write!(f, "{m} [{}{:+}], {}", self.rs1, self.simm(), self.rs2),
            Push => write!(f, "{m} {}", self.rs1),
            Pop => write!(f, "{m} {}", self.rd),
            Jmp | Call => write!(f, "{m} {:#x}", self.imm),
            Jr | Callr => write!(f, "{m} {}", self.rs1),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                write!(f, "{m} {}, {}, {:#x}", self.rs1, self.rs2, self.imm)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_all_opcodes() {
        for b in 0..=Opcode::MAX {
            let op = Opcode::from_byte(b).unwrap();
            let i = Instruction {
                op,
                rd: Reg::R3,
                rs1: Reg::R5,
                rs2: Reg::SP,
                imm: 0xdead_beef,
            };
            let decoded = Instruction::decode(&i.encode()).unwrap();
            assert_eq!(decoded, i);
        }
    }

    #[test]
    fn decode_errors() {
        assert_eq!(Instruction::decode(&[0u8; 7]), Err(DecodeError::Truncated));
        let mut bytes = Instruction::nop().encode();
        bytes[0] = 0xff;
        assert_eq!(
            Instruction::decode(&bytes),
            Err(DecodeError::BadOpcode(0xff))
        );
        let mut bytes = Instruction::nop().encode();
        bytes[2] = 16;
        assert_eq!(
            Instruction::decode(&bytes),
            Err(DecodeError::BadRegister(16))
        );
    }

    #[test]
    fn terminators() {
        assert!(Opcode::Syscall.is_terminator());
        assert!(Opcode::Call.is_terminator());
        assert!(Opcode::Ret.is_terminator());
        assert!(Opcode::Beq.is_terminator());
        assert!(!Opcode::Add.is_terminator());
        assert!(!Opcode::Movi.is_terminator());
    }

    #[test]
    fn code_target_imms() {
        assert!(Opcode::Jmp.imm_is_code_target());
        assert!(Opcode::Call.imm_is_code_target());
        assert!(Opcode::Beq.imm_is_code_target());
        assert!(!Opcode::Movi.imm_is_code_target());
        assert!(!Opcode::Jr.imm_is_code_target());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Instruction::movi(Reg::R0, 0x14).to_string(),
            "movi r0, 0x14"
        );
        assert_eq!(Instruction::syscall().to_string(), "syscall");
        assert_eq!(
            Instruction::ldw(Reg::R1, Reg::SP, -4).to_string(),
            "ldw r1, [sp-4]"
        );
        assert_eq!(
            Instruction::branch(Opcode::Bne, Reg::R1, Reg::R2, 0x1000).to_string(),
            "bne r1, r2, 0x1000"
        );
    }

    #[test]
    fn negative_immediates() {
        let i = Instruction::addi(Reg::SP, Reg::SP, -64);
        let d = Instruction::decode(&i.encode()).unwrap();
        assert_eq!(d.simm(), -64);
    }
}
