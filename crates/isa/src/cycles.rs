//! Per-instruction cycle costs for the deterministic performance model.
//!
//! The paper measures cycles with the Pentium `rdtsc` counter. The simulator
//! instead charges deterministic costs per instruction; syscall trap and
//! verification costs are charged by the kernel (see `asc-kernel::cost`).
//! Only *relative* costs matter for reproducing the paper's overhead shapes.

use crate::instr::Opcode;

/// Base cycle cost of executing `op` (excluding kernel-side syscall work).
pub fn base_cycles(op: Opcode) -> u64 {
    use Opcode::*;
    match op {
        Nop | Halt => 1,
        Movi | Mov => 1,
        Add | Sub | And | Or | Xor | Shl | Shr => 1,
        Addi | Andi | Ori | Xori | Shli | Shri => 1,
        Mul | Muli => 3,
        Divu | Remu => 12,
        Ldw | Ldb => 2,
        Stw | Stb => 2,
        Push | Pop => 2,
        Jmp | Jr => 1,
        Beq | Bne | Blt | Bge | Bltu | Bgeu => 1,
        Call | Callr => 3,
        Ret => 3,
        // The user-side cost of reaching the trap; kernel adds the rest.
        Syscall => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_positive_and_ordered() {
        // Every opcode has a nonzero cost.
        for b in 0..=38u8 {
            if let Some(op) = Opcode::from_byte(b) {
                assert!(base_cycles(op) >= 1, "{op:?}");
            }
        }
        // Division is the most expensive ALU op; memory beats ALU.
        assert!(base_cycles(Opcode::Divu) > base_cycles(Opcode::Mul));
        assert!(base_cycles(Opcode::Mul) > base_cycles(Opcode::Add));
        assert!(base_cycles(Opcode::Ldw) > base_cycles(Opcode::Add));
    }
}
