//! SVM32: the simulated 32-bit instruction set architecture.
//!
//! The paper's prototype rewrites IA-32 binaries. IA-32 itself is not
//! reproducible in scope, so the repository defines SVM32, a small
//! register machine that preserves every property the paper's machinery
//! depends on:
//!
//! * system calls are a trap instruction ([`Opcode::Syscall`]) with the call
//!   number in a register (`R0`, the analogue of `EAX`) — the installer finds
//!   syscalls exactly the way PLTO finds `int 0x80`;
//! * `CALL` pushes the return address on the stack, so stack-smashing
//!   attacks can redirect control flow just as on IA-32;
//! * every instruction is 8 bytes and address operands live in a fixed
//!   `imm` field, so relocatable binaries can be rewritten by fixing up
//!   relocation targets after code motion (PLTO's relocation requirement);
//! * decoding can fail ([`DecodeError`]), so "could not completely
//!   disassemble" situations (Table 2's OpenBSD `close`) arise naturally.
//!
//! # Registers
//!
//! | register | role |
//! |---|---|
//! | `R0` | syscall number / return value (`EAX` analogue) |
//! | `R1`–`R6` | function and syscall arguments |
//! | `R7`–`R11` | the five authenticated-call arguments added by the installer |
//! | `R12` | scratch |
//! | `R13` | frame pointer |
//! | `R14` | link scratch (CALL still pushes to the stack) |
//! | `R15` | stack pointer |
//!
//! # Example
//!
//! ```
//! use asc_isa::{Instruction, Opcode, Reg};
//!
//! let i = Instruction::movi(Reg::R0, 20); // R0 := 20 (e.g. SYS_getpid)
//! let bytes = i.encode();
//! assert_eq!(Instruction::decode(&bytes).unwrap(), i);
//! ```

pub mod cycles;
pub mod instr;
pub mod reg;

pub use cycles::base_cycles;
pub use instr::{DecodeError, Instruction, Opcode, INSTR_LEN};
pub use reg::Reg;
