//! SVM32 register file.

/// One of the 16 SVM32 general-purpose registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Syscall number / return value (the `EAX` analogue).
    pub const R0: Reg = Reg(0);
    /// First argument register.
    pub const R1: Reg = Reg(1);
    /// Second argument register.
    pub const R2: Reg = Reg(2);
    /// Third argument register.
    pub const R3: Reg = Reg(3);
    /// Fourth argument register.
    pub const R4: Reg = Reg(4);
    /// Fifth argument register.
    pub const R5: Reg = Reg(5);
    /// Last ordinary argument register.
    pub const R6: Reg = Reg(6);
    /// Authenticated-call argument: policy descriptor (`polDes`).
    pub const R7: Reg = Reg(7);
    /// Authenticated-call argument: basic block id of the call (`blockID`).
    pub const R8: Reg = Reg(8);
    /// Authenticated-call argument: pointer to the predecessor-set AS
    /// contents (`predSet`).
    pub const R9: Reg = Reg(9);
    /// Authenticated-call argument: pointer to the policy state cell
    /// (`lbPtr`).
    pub const R10: Reg = Reg(10);
    /// Authenticated-call argument: pointer to the 16-byte call MAC
    /// (`callMAC`).
    pub const R11: Reg = Reg(11);
    /// Scratch register (used freely by compiler-generated code).
    pub const R12: Reg = Reg(12);
    /// Frame pointer.
    pub const FP: Reg = Reg(13);
    /// Link scratch register.
    pub const LR: Reg = Reg(14);
    /// Stack pointer.
    pub const SP: Reg = Reg(15);

    /// Number of registers in the file.
    pub const COUNT: usize = 16;

    /// Constructs a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < Reg::COUNT,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// Fallible construction from an index.
    pub fn try_new(index: u8) -> Option<Reg> {
        ((index as usize) < Reg::COUNT).then_some(Reg(index))
    }

    /// The register's index, 0..=15.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw encoding byte.
    pub fn byte(self) -> u8 {
        self.0
    }

    /// The argument registers `R1..=R6` in order.
    pub fn args() -> [Reg; 6] {
        [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6]
    }

    /// The five authenticated-call registers `R7..=R11` in order
    /// (`polDes`, `blockID`, `predSet`, `lbPtr`, `callMAC`).
    pub fn auth_args() -> [Reg; 5] {
        [Reg::R7, Reg::R8, Reg::R9, Reg::R10, Reg::R11]
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Reg::FP => write!(f, "fp"),
            Reg::LR => write!(f, "lr"),
            Reg::SP => write!(f, "sp"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

impl std::str::FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fp" => return Ok(Reg::FP),
            "lr" => return Ok(Reg::LR),
            "sp" => return Ok(Reg::SP),
            _ => {}
        }
        let rest = s
            .strip_prefix('r')
            .ok_or_else(|| ParseRegError(s.to_string()))?;
        let n: u8 = rest.parse().map_err(|_| ParseRegError(s.to_string()))?;
        Reg::try_new(n).ok_or_else(|| ParseRegError(s.to_string()))
    }
}

/// Error parsing a register name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRegError(pub String);

impl std::fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid register name `{}`", self.0)
    }
}

impl std::error::Error for ParseRegError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        for i in 0..16u8 {
            let r = Reg::new(i);
            let parsed: Reg = r.to_string().parse().unwrap();
            assert_eq!(parsed, r);
        }
        assert_eq!("r13".parse::<Reg>().unwrap(), Reg::FP);
        assert_eq!("sp".parse::<Reg>().unwrap(), Reg::SP);
    }

    #[test]
    fn invalid_parse() {
        assert!("r16".parse::<Reg>().is_err());
        assert!("x1".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(16);
    }

    #[test]
    fn register_groups() {
        assert_eq!(Reg::args().len(), 6);
        assert_eq!(Reg::auth_args().len(), 5);
        assert_eq!(Reg::auth_args()[0], Reg::R7);
        assert_eq!(Reg::auth_args()[4], Reg::R11);
    }
}
