//! Line-oriented tokenisation for the assembler.

/// An assembly error, with the 1-based source line where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// One meaningful source line, split into label / operation / operands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// Labels defined on this line (a line may carry several `name:`).
    pub labels: Vec<String>,
    /// Mnemonic or directive (directives keep their leading dot).
    pub op: Option<String>,
    /// Comma-separated operand fields, with memory operands `[reg+off]`
    /// kept intact and string literals unsplit.
    pub operands: Vec<String>,
}

fn strip_comment(line: &str) -> &str {
    // Respect string literals: a ';' or '#' inside quotes is content.
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            ';' | '#' => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits an operand list on commas, honouring quotes and brackets.
fn split_operands(s: &str, line_no: usize) -> Result<Vec<String>, AsmError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    let mut depth = 0usize;
    for c in s.chars() {
        if in_str {
            cur.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                cur.push(c);
            }
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| AsmError::new(line_no, "unbalanced ']'"))?;
                cur.push(c);
            }
            ',' if depth == 0 => {
                fields.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if in_str {
        return Err(AsmError::new(line_no, "unterminated string literal"));
    }
    if depth != 0 {
        return Err(AsmError::new(line_no, "unbalanced '['"));
    }
    let last = cur.trim();
    if !last.is_empty() {
        fields.push(last.to_string());
    } else if !fields.is_empty() {
        return Err(AsmError::new(line_no, "trailing comma in operand list"));
    }
    Ok(fields)
}

fn is_label_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$'
}

/// Tokenises a full source string into meaningful lines.
pub(crate) fn tokenize(source: &str) -> Result<Vec<Line>, AsmError> {
    let mut lines = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let mut rest = strip_comment(raw).trim();
        if rest.is_empty() {
            continue;
        }
        let mut labels = Vec::new();
        // Consume leading `name:` labels.
        loop {
            let Some(colon) = rest.find(':') else { break };
            let candidate = &rest[..colon];
            // The trailing ':' distinguishes labels from directives, so
            // '.'-prefixed (local) labels are fine here.
            if !candidate.is_empty() && candidate.chars().all(is_label_char) {
                labels.push(candidate.to_string());
                rest = rest[colon + 1..].trim_start();
            } else {
                break;
            }
        }
        let rest = rest.trim();
        let (op, operands) = if rest.is_empty() {
            (None, Vec::new())
        } else {
            let (op, tail) = match rest.find(char::is_whitespace) {
                Some(ws) => (&rest[..ws], rest[ws..].trim()),
                None => (rest, ""),
            };
            (Some(op.to_ascii_lowercase()), split_operands(tail, number)?)
        };
        if labels.is_empty() && op.is_none() {
            continue;
        }
        lines.push(Line {
            number,
            labels,
            op,
            operands,
        });
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_ops() {
        let lines = tokenize("main:\n  movi r0, 1 ; comment\nloop: halt\n").unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].labels, vec!["main"]);
        assert_eq!(lines[0].op, None);
        assert_eq!(lines[1].op.as_deref(), Some("movi"));
        assert_eq!(lines[1].operands, vec!["r0", "1"]);
        assert_eq!(lines[2].labels, vec!["loop"]);
        assert_eq!(lines[2].op.as_deref(), Some("halt"));
    }

    #[test]
    fn comments_and_blank_lines() {
        let lines = tokenize("; nothing\n\n# also nothing\n  halt\n").unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].number, 4);
    }

    #[test]
    fn string_with_semicolon_and_comma() {
        let lines = tokenize(r#"msg: .asciz "a;b,c # d""#).unwrap();
        assert_eq!(lines[0].operands, vec![r#""a;b,c # d""#]);
    }

    #[test]
    fn memory_operands_keep_brackets() {
        let lines = tokenize("ldw r1, [sp-4]\nstw [r2+8], r3").unwrap();
        assert_eq!(lines[0].operands, vec!["r1", "[sp-4]"]);
        assert_eq!(lines[1].operands, vec!["[r2+8]", "r3"]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("halt ]").is_err());
        assert!(tokenize(".asciz \"oops").is_err());
        assert!(tokenize("movi r0, 1,").is_err());
    }

    #[test]
    fn multiple_labels_one_line() {
        let lines = tokenize("a: b: halt").unwrap();
        assert_eq!(lines[0].labels, vec!["a", "b"]);
        assert_eq!(lines[0].op.as_deref(), Some("halt"));
    }
}
