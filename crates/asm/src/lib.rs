//! The SVM32 assembler: assembly text → relocatable SOF binary.
//!
//! This plays the role of the system assembler/linker in the paper's
//! toolchain: guest programs (hand-written or produced by `asc-lang`) are
//! assembled into relocatable binaries that the trusted installer can then
//! analyse and rewrite. Every label reference that lands in an instruction
//! immediate or a `.word` emits a relocation, which is exactly the
//! relocation information PLTO requires of its inputs.
//!
//! # Syntax
//!
//! ```text
//! ; comment                       # comment
//!     .text                       ; switch section (.text/.rodata/.data/.bss)
//!     .entry main                 ; set the entry symbol (default: main)
//!     .equ SYS_EXIT, 1            ; named constant
//! main:                           ; label
//!     addi sp, sp, -16
//!     movi r1, msg                ; label operand -> relocation
//!     movi r0, SYS_EXIT
//!     syscall
//!     .rodata
//! msg: .asciz "hello\n"
//!     .data
//! tbl: .word main                 ; data relocation
//!      .byte 7
//!     .bss
//! buf: .space 64
//! ```
//!
//! # Example
//!
//! ```
//! let src = "
//!     .text
//! main:
//!     movi r0, 1
//!     syscall
//!     halt
//! ";
//! let binary = asc_asm::assemble(src)?;
//! assert_eq!(binary.symbol("main").unwrap().addr, binary.entry());
//! # Ok::<(), asc_asm::AsmError>(())
//! ```

mod assembler;
mod lexer;

pub use assembler::{assemble, assemble_many, Assembler};
pub use lexer::AsmError;
