//! The two-pass assembler.

use std::collections::HashMap;

use asc_isa::{Instruction, Opcode, Reg, INSTR_LEN};
use asc_object::{sections, Binary, Relocation, Section, SectionFlags, Symbol, SymbolKind};

use crate::lexer::{tokenize, AsmError, Line};

/// Page size used for section alignment (sections get distinct protection).
const PAGE: u32 = 0x1000;

/// Which of the four output sections an item was placed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Sec {
    Text,
    Rodata,
    Data,
    Bss,
}

impl Sec {
    fn name(self) -> &'static str {
        match self {
            Sec::Text => sections::TEXT,
            Sec::Rodata => sections::RODATA,
            Sec::Data => sections::DATA,
            Sec::Bss => sections::BSS,
        }
    }

    fn flags(self) -> SectionFlags {
        match self {
            Sec::Text => SectionFlags::RX,
            Sec::Rodata => SectionFlags::RO,
            Sec::Data | Sec::Bss => SectionFlags::RW,
        }
    }

    const ALL: [Sec; 4] = [Sec::Text, Sec::Rodata, Sec::Data, Sec::Bss];
}

/// An operand expression: a constant or a symbol reference plus offset.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Expr {
    Num(i64),
    Sym(String, i64),
}

/// A placed item awaiting encoding.
#[derive(Clone, Debug)]
enum Item {
    Instr { line: usize, instr: ProtoInstr },
    Word { line: usize, expr: Expr },
    Byte { line: usize, expr: Expr },
    Ascii(Vec<u8>),
    Space(u32),
}

/// An instruction whose immediate may still reference a label.
#[derive(Clone, Debug)]
struct ProtoInstr {
    op: Opcode,
    rd: Reg,
    rs1: Reg,
    rs2: Reg,
    imm: Expr,
}

/// The assembler. Use [`assemble`] or [`assemble_many`] for the common
/// cases; the builder form exists so callers can assemble multiple sources
/// while controlling the entry symbol.
#[derive(Debug, Default)]
pub struct Assembler {
    sources: Vec<String>,
    entry_symbol: Option<String>,
}

/// Assembles a single source file into a relocatable binary.
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the offending line on any syntax or
/// resolution failure.
pub fn assemble(source: &str) -> Result<Binary, AsmError> {
    let mut a = Assembler::new();
    a.push_source(source);
    a.finish()
}

/// Assembles several sources as one unit (shared label namespace), in order.
/// This is the "static linking" step of the toolchain: guest programs pass
/// their compiled code plus the mini-libc here.
///
/// # Errors
///
/// Returns an [`AsmError`] on any syntax or resolution failure. Line numbers
/// refer to the concatenation of the sources.
pub fn assemble_many<S: AsRef<str>>(sources: &[S]) -> Result<Binary, AsmError> {
    let mut a = Assembler::new();
    for s in sources {
        a.push_source(s.as_ref());
    }
    a.finish()
}

impl Assembler {
    /// A fresh assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Adds a source file (appended to the unit).
    pub fn push_source(&mut self, source: &str) -> &mut Assembler {
        self.sources.push(source.to_string());
        self
    }

    /// Overrides the entry symbol (default: the `.entry` directive, else
    /// `main`, else the start of `.text`).
    pub fn entry_symbol(&mut self, name: impl Into<String>) -> &mut Assembler {
        self.entry_symbol = Some(name.into());
        self
    }

    /// Runs both passes and produces the binary.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] on any syntax or resolution failure.
    pub fn finish(&self) -> Result<Binary, AsmError> {
        let joined = self.sources.join("\n");
        let lines = tokenize(&joined)?;
        Pass::run(lines, self.entry_symbol.clone())
    }
}

struct Pass {
    items: HashMap<Sec, Vec<Item>>,
    offsets: HashMap<Sec, u32>,
    labels: HashMap<String, (Sec, u32)>,
    globals: Vec<String>,
    consts: HashMap<String, i64>,
    entry_directive: Option<String>,
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    s.parse::<Reg>()
        .map_err(|e| AsmError::new(line, e.to_string()))
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix("'") {
        // character literal 'c' or '\n'
        let body = rest.strip_suffix('\'')?;
        let c = match body {
            "\\n" => b'\n',
            "\\t" => b'\t',
            "\\0" => 0,
            "\\\\" => b'\\',
            "\\'" => b'\'',
            _ => {
                let mut chars = body.chars();
                let c = chars.next()?;
                if chars.next().is_some() || !c.is_ascii() {
                    return None;
                }
                c as u8
            }
        };
        return Some(c as i64);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -value } else { value })
}

impl Pass {
    fn run(lines: Vec<Line>, entry_override: Option<String>) -> Result<Binary, AsmError> {
        let mut p = Pass {
            items: Sec::ALL.iter().map(|&s| (s, Vec::new())).collect(),
            offsets: Sec::ALL.iter().map(|&s| (s, 0)).collect(),
            labels: HashMap::new(),
            globals: Vec::new(),
            consts: HashMap::new(),
            entry_directive: None,
        };
        let mut cur = Sec::Text;
        for line in &lines {
            cur = p.handle_line(line, cur)?;
        }
        p.emit(entry_override)
    }

    fn offset(&mut self, sec: Sec) -> &mut u32 {
        self.offsets.get_mut(&sec).expect("all sections present")
    }

    fn push_item(&mut self, sec: Sec, item: Item, size: u32) {
        self.items
            .get_mut(&sec)
            .expect("all sections present")
            .push(item);
        *self.offset(sec) += size;
    }

    fn parse_expr(&self, s: &str, line: usize) -> Result<Expr, AsmError> {
        let s = s.trim();
        if let Some(n) = parse_int(s) {
            return Ok(Expr::Num(n));
        }
        if let Some(&n) = self.consts.get(s) {
            return Ok(Expr::Num(n));
        }
        // name, name+N, name-N
        let (name, off) = if let Some(plus) = s.rfind('+') {
            (&s[..plus], parse_int(&s[plus + 1..]))
        } else if let Some(minus) = s.rfind('-').filter(|&i| i > 0) {
            (&s[..minus], parse_int(&s[minus + 1..]).map(|n| -n))
        } else {
            (s, Some(0))
        };
        let name = name.trim();
        let off = off.ok_or_else(|| AsmError::new(line, format!("bad expression `{s}`")))?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '.')
        {
            return Err(AsmError::new(line, format!("bad expression `{s}`")));
        }
        if let Some(&n) = self.consts.get(name) {
            return Ok(Expr::Num(n + off));
        }
        Ok(Expr::Sym(name.to_string(), off))
    }

    /// Parses `[reg]`, `[reg+N]`, `[reg-N]`.
    fn parse_mem(&self, s: &str, line: usize) -> Result<(Reg, i32), AsmError> {
        let body = s
            .strip_prefix('[')
            .and_then(|x| x.strip_suffix(']'))
            .ok_or_else(|| AsmError::new(line, format!("expected memory operand, got `{s}`")))?
            .trim();
        let split = body.find(['+', '-']);
        let (reg_s, off) = match split {
            Some(i) => {
                let off_str = &body[i..];
                let off = parse_int(off_str)
                    .or_else(|| {
                        self.consts.get(off_str[1..].trim()).map(|&c| {
                            if off_str.starts_with('-') {
                                -c
                            } else {
                                c
                            }
                        })
                    })
                    .ok_or_else(|| AsmError::new(line, format!("bad offset `{off_str}`")))?;
                (&body[..i], off)
            }
            None => (body, 0),
        };
        let reg = parse_reg(reg_s.trim(), line)?;
        let off =
            i32::try_from(off).map_err(|_| AsmError::new(line, "memory offset out of range"))?;
        Ok((reg, off))
    }

    fn handle_line(&mut self, line: &Line, cur: Sec) -> Result<Sec, AsmError> {
        for label in &line.labels {
            let off = *self.offset(cur);
            if self.labels.insert(label.clone(), (cur, off)).is_some() {
                return Err(AsmError::new(
                    line.number,
                    format!("duplicate label `{label}`"),
                ));
            }
        }
        let Some(op) = &line.op else { return Ok(cur) };
        let n = line.number;
        let ops = &line.operands;
        match op.as_str() {
            ".text" => return Ok(Sec::Text),
            ".rodata" => return Ok(Sec::Rodata),
            ".data" => return Ok(Sec::Data),
            ".bss" => return Ok(Sec::Bss),
            ".global" | ".globl" => {
                let name = ops
                    .first()
                    .ok_or_else(|| AsmError::new(n, ".global needs a symbol"))?;
                self.globals.push(name.clone());
            }
            ".entry" => {
                let name = ops
                    .first()
                    .ok_or_else(|| AsmError::new(n, ".entry needs a symbol"))?;
                self.entry_directive = Some(name.clone());
            }
            ".equ" => {
                if ops.len() != 2 {
                    return Err(AsmError::new(n, ".equ needs `name, value`"));
                }
                let value = match self.parse_expr(&ops[1], n)? {
                    Expr::Num(v) => v,
                    Expr::Sym(..) => return Err(AsmError::new(n, ".equ value must be a constant")),
                };
                self.consts.insert(ops[0].clone(), value);
            }
            ".word" => {
                for operand in ops {
                    let expr = self.parse_expr(operand, n)?;
                    self.push_item(cur, Item::Word { line: n, expr }, 4);
                }
            }
            ".byte" => {
                for operand in ops {
                    let expr = self.parse_expr(operand, n)?;
                    self.push_item(cur, Item::Byte { line: n, expr }, 1);
                }
            }
            ".ascii" | ".asciz" => {
                let lit = ops
                    .first()
                    .ok_or_else(|| AsmError::new(n, "string directive needs a literal"))?;
                let mut bytes = parse_string(lit, n)?;
                if op == ".asciz" {
                    bytes.push(0);
                }
                let len = bytes.len() as u32;
                self.push_item(cur, Item::Ascii(bytes), len);
            }
            ".space" | ".skip" => {
                let size = match self.parse_expr(
                    ops.first()
                        .ok_or_else(|| AsmError::new(n, ".space needs a size"))?,
                    n,
                )? {
                    Expr::Num(v) if v >= 0 => v as u32,
                    _ => {
                        return Err(AsmError::new(
                            n,
                            ".space size must be a non-negative constant",
                        ))
                    }
                };
                self.push_item(cur, Item::Space(size), size);
            }
            ".align" => {
                let to = match self.parse_expr(
                    ops.first()
                        .ok_or_else(|| AsmError::new(n, ".align needs a value"))?,
                    n,
                )? {
                    Expr::Num(v) if v > 0 && (v & (v - 1)) == 0 => v as u32,
                    _ => return Err(AsmError::new(n, ".align needs a power of two")),
                };
                self.align(cur, to);
            }
            directive if directive.starts_with('.') => {
                return Err(AsmError::new(n, format!("unknown directive `{directive}`")));
            }
            mnemonic => {
                if cur != Sec::Text {
                    return Err(AsmError::new(n, "instructions only allowed in .text"));
                }
                let instr = self.parse_instr(mnemonic, ops, n)?;
                self.push_item(Sec::Text, Item::Instr { line: n, instr }, INSTR_LEN as u32);
            }
        }
        Ok(cur)
    }

    fn align(&mut self, sec: Sec, to: u32) {
        let off = *self.offset(sec);
        let pad = (to - off % to) % to;
        if pad > 0 {
            self.push_item(sec, Item::Space(pad), pad);
        }
    }

    fn parse_instr(
        &self,
        mnemonic: &str,
        ops: &[String],
        n: usize,
    ) -> Result<ProtoInstr, AsmError> {
        use Opcode::*;
        let zero = Reg::R0;
        let num0 = Expr::Num(0);
        let arity = |want: usize| -> Result<(), AsmError> {
            if ops.len() != want {
                Err(AsmError::new(
                    n,
                    format!("`{mnemonic}` expects {want} operand(s), got {}", ops.len()),
                ))
            } else {
                Ok(())
            }
        };
        let proto = |op, rd, rs1, rs2, imm| ProtoInstr {
            op,
            rd,
            rs1,
            rs2,
            imm,
        };
        let alu3 = |op| -> Result<ProtoInstr, AsmError> {
            arity(3)?;
            Ok(proto(
                op,
                parse_reg(&ops[0], n)?,
                parse_reg(&ops[1], n)?,
                parse_reg(&ops[2], n)?,
                num0.clone(),
            ))
        };
        let alui = |op| -> Result<ProtoInstr, AsmError> {
            arity(3)?;
            Ok(proto(
                op,
                parse_reg(&ops[0], n)?,
                parse_reg(&ops[1], n)?,
                zero,
                self.parse_expr(&ops[2], n)?,
            ))
        };
        let branch = |op| -> Result<ProtoInstr, AsmError> {
            arity(3)?;
            Ok(proto(
                op,
                zero,
                parse_reg(&ops[0], n)?,
                parse_reg(&ops[1], n)?,
                self.parse_expr(&ops[2], n)?,
            ))
        };
        match mnemonic {
            "nop" => {
                arity(0)?;
                Ok(proto(Nop, zero, zero, zero, num0))
            }
            "halt" => {
                arity(0)?;
                Ok(proto(Halt, zero, zero, zero, num0))
            }
            "ret" => {
                arity(0)?;
                Ok(proto(Ret, zero, zero, zero, num0))
            }
            "syscall" => {
                arity(0)?;
                Ok(proto(Syscall, zero, zero, zero, num0))
            }
            "movi" => {
                arity(2)?;
                Ok(proto(
                    Movi,
                    parse_reg(&ops[0], n)?,
                    zero,
                    zero,
                    self.parse_expr(&ops[1], n)?,
                ))
            }
            "mov" => {
                arity(2)?;
                Ok(proto(
                    Mov,
                    parse_reg(&ops[0], n)?,
                    parse_reg(&ops[1], n)?,
                    zero,
                    num0,
                ))
            }
            "add" => alu3(Add),
            "sub" => alu3(Sub),
            "mul" => alu3(Mul),
            "divu" => alu3(Divu),
            "remu" => alu3(Remu),
            "and" => alu3(And),
            "or" => alu3(Or),
            "xor" => alu3(Xor),
            "shl" => alu3(Shl),
            "shr" => alu3(Shr),
            "addi" => alui(Addi),
            "andi" => alui(Andi),
            "ori" => alui(Ori),
            "xori" => alui(Xori),
            "shli" => alui(Shli),
            "shri" => alui(Shri),
            "muli" => alui(Muli),
            "ldw" | "ldb" => {
                arity(2)?;
                let (rs1, off) = self.parse_mem(&ops[1], n)?;
                let op = if mnemonic == "ldw" { Ldw } else { Ldb };
                Ok(proto(
                    op,
                    parse_reg(&ops[0], n)?,
                    rs1,
                    zero,
                    Expr::Num(off as i64),
                ))
            }
            "stw" | "stb" => {
                arity(2)?;
                let (rs1, off) = self.parse_mem(&ops[0], n)?;
                let op = if mnemonic == "stw" { Stw } else { Stb };
                Ok(proto(
                    op,
                    zero,
                    rs1,
                    parse_reg(&ops[1], n)?,
                    Expr::Num(off as i64),
                ))
            }
            "push" => {
                arity(1)?;
                Ok(proto(Push, zero, parse_reg(&ops[0], n)?, zero, num0))
            }
            "pop" => {
                arity(1)?;
                Ok(proto(Pop, parse_reg(&ops[0], n)?, zero, zero, num0))
            }
            "jmp" => {
                arity(1)?;
                Ok(proto(Jmp, zero, zero, zero, self.parse_expr(&ops[0], n)?))
            }
            "jr" => {
                arity(1)?;
                Ok(proto(Jr, zero, parse_reg(&ops[0], n)?, zero, num0))
            }
            "call" => {
                arity(1)?;
                Ok(proto(Call, zero, zero, zero, self.parse_expr(&ops[0], n)?))
            }
            "callr" => {
                arity(1)?;
                Ok(proto(Callr, zero, parse_reg(&ops[0], n)?, zero, num0))
            }
            "beq" => branch(Beq),
            "bne" => branch(Bne),
            "blt" => branch(Blt),
            "bge" => branch(Bge),
            "bltu" => branch(Bltu),
            "bgeu" => branch(Bgeu),
            other => Err(AsmError::new(n, format!("unknown mnemonic `{other}`"))),
        }
    }

    fn emit(self, entry_override: Option<String>) -> Result<Binary, AsmError> {
        // Lay out sections page-aligned, in canonical order, skipping empties.
        let mut base = asc_object::LOAD_BASE;
        let mut sec_addr: HashMap<Sec, u32> = HashMap::new();
        let mut sec_index: HashMap<Sec, u32> = HashMap::new();
        let mut binary = Binary::new(0);
        for sec in Sec::ALL {
            let size = self.offsets[&sec];
            if size == 0 {
                continue;
            }
            sec_addr.insert(sec, base);
            let index = if sec == Sec::Bss {
                binary.push_section(Section::zeroed(sec.name(), base, size, sec.flags()))
            } else {
                binary.push_section(Section::new(
                    sec.name(),
                    base,
                    Vec::with_capacity(size as usize),
                    sec.flags(),
                ))
            };
            sec_index.insert(sec, index);
            base = (base + size).div_ceil(PAGE) * PAGE;
        }

        // Resolve an expression to a value, reporting whether it is an
        // address (needs a relocation).
        let resolve = |expr: &Expr, line: usize| -> Result<(u32, bool), AsmError> {
            match expr {
                Expr::Num(v) => Ok((*v as u32, false)),
                Expr::Sym(name, off) => {
                    let (sec, sec_off) = self
                        .labels
                        .get(name)
                        .ok_or_else(|| AsmError::new(line, format!("undefined symbol `{name}`")))?;
                    let addr = sec_addr[sec] as i64 + *sec_off as i64 + off;
                    Ok((addr as u32, true))
                }
            }
        };

        // Encode items.
        for sec in Sec::ALL {
            let Some(&index) = sec_index.get(&sec) else {
                continue;
            };
            let items = &self.items[&sec];
            if sec == Sec::Bss {
                for item in items {
                    if !matches!(item, Item::Space(_)) {
                        return Err(AsmError::new(0, ".bss may only contain .space/.align"));
                    }
                }
                continue;
            }
            let mut data = Vec::with_capacity(self.offsets[&sec] as usize);
            let mut relocs = Vec::new();
            for item in items {
                match item {
                    Item::Instr { line, instr } => {
                        let (imm, is_addr) = resolve(&instr.imm, *line)?;
                        if is_addr {
                            relocs.push(Relocation {
                                section: index,
                                offset: data.len() as u32 + 4,
                            });
                        }
                        let encoded = Instruction {
                            op: instr.op,
                            rd: instr.rd,
                            rs1: instr.rs1,
                            rs2: instr.rs2,
                            imm,
                        }
                        .encode();
                        data.extend_from_slice(&encoded);
                    }
                    Item::Word { line, expr } => {
                        let (value, is_addr) = resolve(expr, *line)?;
                        if is_addr {
                            relocs.push(Relocation {
                                section: index,
                                offset: data.len() as u32,
                            });
                        }
                        data.extend_from_slice(&value.to_le_bytes());
                    }
                    Item::Byte { line, expr } => {
                        let (value, is_addr) = resolve(expr, *line)?;
                        if is_addr {
                            return Err(AsmError::new(*line, ".byte cannot hold an address"));
                        }
                        data.push(value as u8);
                    }
                    Item::Ascii(bytes) => data.extend_from_slice(bytes),
                    Item::Space(size) => data.extend(std::iter::repeat_n(0u8, *size as usize)),
                }
            }
            let section = &mut binary.sections_mut()[index as usize];
            section.mem_size = data.len() as u32;
            section.data = data;
            for r in relocs {
                binary.push_relocation(r);
            }
        }

        // Symbols. Labels starting with '.' are local (assembler-internal
        // or compiler-generated) and are not exported.
        for (name, (sec, off)) in &self.labels {
            if name.starts_with('.') {
                continue;
            }
            let Some(&addr) = sec_addr.get(sec) else {
                continue;
            };
            let kind = if *sec == Sec::Text {
                SymbolKind::Func
            } else {
                SymbolKind::Object
            };
            binary.push_symbol(Symbol {
                name: name.clone(),
                addr: addr + off,
                kind,
            });
        }

        // Entry point.
        let entry_name = entry_override
            .or(self.entry_directive)
            .unwrap_or_else(|| "main".to_string());
        let entry = match binary.symbol(&entry_name) {
            Some(sym) => sym.addr,
            None => sec_addr
                .get(&Sec::Text)
                .copied()
                .unwrap_or(asc_object::LOAD_BASE),
        };
        binary.set_entry(entry);
        binary.set_relocatable(true);
        binary
            .validate()
            .map_err(|e| AsmError::new(0, format!("internal layout error: {e}")))?;
        Ok(binary)
    }
}

fn parse_string(lit: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let body = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| AsmError::new(line, "expected string literal"))?;
    let mut out = Vec::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            let esc = chars
                .next()
                .ok_or_else(|| AsmError::new(line, "dangling escape in string"))?;
            out.push(match esc {
                'n' => b'\n',
                't' => b'\t',
                'r' => b'\r',
                '0' => 0,
                '\\' => b'\\',
                '"' => b'"',
                other => return Err(AsmError::new(line, format!("unknown escape `\\{other}`"))),
            });
        } else if c.is_ascii() {
            out.push(c as u8);
        } else {
            return Err(AsmError::new(line, "non-ASCII character in string"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_isa::Instruction as I;

    fn text_instrs(b: &Binary) -> Vec<Instruction> {
        let text = b.section_by_name(".text").unwrap();
        text.data
            .chunks_exact(INSTR_LEN)
            .map(|c| Instruction::decode(c).unwrap())
            .collect()
    }

    #[test]
    fn hello_layout() {
        let b = assemble(
            r#"
            .text
            .entry main
        main:
            movi r1, msg
            movi r2, 6
            movi r0, 4      ; SYS_write-ish
            syscall
            halt
            .rodata
        msg: .asciz "hello"
            .data
        ptr: .word msg
            .bss
        buf: .space 32
        "#,
        )
        .unwrap();
        assert_eq!(b.sections().len(), 4);
        let text = b.section_by_name(".text").unwrap();
        assert_eq!(text.addr, 0x1000);
        assert_eq!(text.data.len(), 5 * INSTR_LEN);
        let rodata = b.section_by_name(".rodata").unwrap();
        assert_eq!(rodata.addr, 0x2000);
        assert_eq!(rodata.data, b"hello\0");
        let instrs = text_instrs(&b);
        assert_eq!(instrs[0], I::movi(Reg::R1, 0x2000));
        // Two relocations: movi r1, msg and ptr: .word msg.
        assert_eq!(b.relocations().len(), 2);
        let data = b.section_by_name(".data").unwrap();
        assert_eq!(&data.data[..4], &0x2000u32.to_le_bytes());
        assert_eq!(b.entry(), b.symbol("main").unwrap().addr);
        assert_eq!(
            b.symbol("buf").unwrap().addr,
            b.section_by_name(".bss").unwrap().addr
        );
    }

    #[test]
    fn equ_and_char_literals() {
        let b = assemble(
            "
            .equ SYS_EXIT, 1
            .text
        main:
            movi r0, SYS_EXIT
            movi r1, 'A'
            syscall
        ",
        )
        .unwrap();
        let instrs = text_instrs(&b);
        assert_eq!(instrs[0].imm, 1);
        assert_eq!(instrs[1].imm, 65);
        assert!(b.relocations().is_empty());
    }

    #[test]
    fn memory_operands_and_negative_offsets() {
        let b = assemble(
            "
            .text
        main:
            addi sp, sp, -16
            stw [sp+4], r1
            ldw r2, [sp+4]
            ldb r3, [r2]
            stb [fp-1], r3
            ret
        ",
        )
        .unwrap();
        let instrs = text_instrs(&b);
        assert_eq!(instrs[0].simm(), -16);
        assert_eq!(instrs[1], I::stw(Reg::SP, 4, Reg::R1));
        assert_eq!(instrs[3], I::ldb(Reg::R3, Reg::R2, 0));
        assert_eq!(instrs[4], I::stb(Reg::FP, -1, Reg::R3));
    }

    #[test]
    fn branches_and_calls_relocate() {
        let b = assemble(
            "
            .text
        main:
            movi r1, 0
        loop:
            addi r1, r1, 1
            movi r2, 10
            bne r1, r2, loop
            call helper
            halt
        helper:
            ret
        ",
        )
        .unwrap();
        let instrs = text_instrs(&b);
        let loop_addr = b.symbol("loop").unwrap().addr;
        let helper_addr = b.symbol("helper").unwrap().addr;
        assert_eq!(instrs[3].imm, loop_addr);
        assert_eq!(instrs[4].imm, helper_addr);
        assert_eq!(b.relocations().len(), 2);
        for r in b.relocations() {
            let v = b.reloc_value(*r);
            assert!(v == loop_addr || v == helper_addr);
        }
    }

    #[test]
    fn errors_report_lines() {
        let err = assemble("\n\n  bogus r1\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("bogus"));
        assert!(assemble("movi r0")
            .unwrap_err()
            .message
            .contains("expects 2"));
        assert!(assemble("jmp nowhere\n")
            .unwrap_err()
            .message
            .contains("undefined symbol"));
        assert!(assemble("a: halt\na: halt\n")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(assemble(".data\nx: movi r0, 1\n")
            .unwrap_err()
            .message
            .contains("only allowed in .text"));
        assert!(assemble(".bss\n.word 5\n").is_err());
    }

    #[test]
    fn assemble_many_links_symbols_across_sources() {
        let prog = "
            .text
        main:
            call libfn
            halt
        ";
        let lib = "
            .text
        libfn:
            movi r0, 42
            ret
        ";
        let b = assemble_many(&[prog, lib]).unwrap();
        let instrs = text_instrs(&b);
        assert_eq!(instrs[0].imm, b.symbol("libfn").unwrap().addr);
    }

    #[test]
    fn word_alignment() {
        let b = assemble(
            "
            .text
        main: halt
            .data
        s: .byte 1
            .align 4
        w: .word 0x11223344
        ",
        )
        .unwrap();
        let w = b.symbol("w").unwrap().addr;
        assert_eq!(w % 4, 0);
        let data = b.section_by_name(".data").unwrap();
        let off = (w - data.addr) as usize;
        assert_eq!(&data.data[off..off + 4], &0x11223344u32.to_le_bytes());
    }

    #[test]
    fn label_plus_offset() {
        let b = assemble(
            "
            .text
        main:
            movi r1, table+8
            halt
            .data
        table: .space 16
        ",
        )
        .unwrap();
        let instrs = text_instrs(&b);
        assert_eq!(instrs[0].imm, b.symbol("table").unwrap().addr + 8);
        assert_eq!(b.relocations().len(), 1);
    }
}
