//! Dependency-free deterministic randomness for property-style tests.
//!
//! The workspace builds hermetically (no crates-io access), so the
//! property tests that used to lean on `proptest`/`rand` draw their cases
//! from this small, seeded PRNG instead. Runs are fully reproducible: a
//! failing case can be replayed from its seed.

/// A splitmix64-based pseudo-random generator.
///
/// Not cryptographic — it only needs to be fast, well distributed, and
/// deterministic across platforms.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. The same seed always yields the
    /// same sequence.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 (public domain, Vigna).
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32 raw bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniformly distributed `u32` in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// A uniformly distributed `usize` in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A random byte.
    pub fn byte(&mut self) -> u8 {
        self.next_u64() as u8
    }

    /// A random `bool`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        self.range_u32(0, den) < num
    }

    /// A vector of random bytes with length drawn from `len_lo..len_hi`.
    ///
    /// # Panics
    ///
    /// Panics if the length range is empty.
    pub fn bytes(&mut self, len_lo: usize, len_hi: usize) -> Vec<u8> {
        let len = self.range_usize(len_lo, len_hi);
        (0..len).map(|_| self.byte()).collect()
    }

    /// A random ASCII-lowercase string with length drawn from
    /// `len_lo..len_hi`.
    ///
    /// # Panics
    ///
    /// Panics if the length range is empty.
    pub fn lowercase(&mut self, len_lo: usize, len_hi: usize) -> String {
        let len = self.range_usize(len_lo, len_hi);
        (0..len)
            .map(|_| (b'a' + (self.next_u64() % 26) as u8) as char)
            .collect()
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

/// Runs `body` for `cases` deterministic cases, passing a per-case [`Rng`]
/// derived from `seed` and the case index. Panics from `body` propagate
/// with the case number attached via the rng seed, so failures reproduce.
pub fn check<F: FnMut(&mut Rng)>(seed: u64, cases: u64, mut body: F) {
    for case in 0..cases {
        let mut rng = Rng::new(seed ^ case.wrapping_mul(0x517c_c1b7_2722_0a95));
        body(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(Rng::new(1), |r, _| Some(r.next_u64()))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(Rng::new(1), |r, _| Some(r.next_u64()))
            .collect();
        let c: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(Rng::new(2), |r, _| Some(r.next_u64()))
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(42);
        for _ in 0..1000 {
            let v = rng.range_u32(10, 20);
            assert!((10..20).contains(&v));
            let s = rng.lowercase(0, 6);
            assert!(s.len() < 6);
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn check_runs_all_cases() {
        let mut n = 0;
        check(7, 25, |_| n += 1);
        assert_eq!(n, 25);
    }
}
