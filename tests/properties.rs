//! Property-based tests across crate boundaries: encoding round trips,
//! cryptographic tamper-evidence, pattern soundness, and the assembler/
//! disassembler agreement.

use asc::core::{encode_call, EncodedArg, EncodedCall, Pattern, PolicyDescriptor};
use asc::crypto::{AuthenticatedString, CapabilitySet, Cmac, MacKey};
use asc::isa::{Instruction, Opcode, Reg};
use asc::object::{Binary, Relocation, Section, SectionFlags, Symbol, SymbolKind};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    (0u8..=38, arb_reg(), arb_reg(), arb_reg(), any::<u32>()).prop_map(
        |(op, rd, rs1, rs2, imm)| Instruction {
            op: Opcode::from_byte(op).expect("in range"),
            rd,
            rs1,
            rs2,
            imm,
        },
    )
}

proptest! {
    #[test]
    fn instruction_encode_decode_roundtrip(instr in arb_instruction()) {
        let decoded = Instruction::decode(&instr.encode()).unwrap();
        prop_assert_eq!(decoded, instr);
    }

    #[test]
    fn cmac_distinguishes_messages(a in prop::collection::vec(any::<u8>(), 0..200),
                                    b in prop::collection::vec(any::<u8>(), 0..200)) {
        let key = MacKey::from_seed(1);
        let ma = key.mac(&a);
        let mb = key.mac(&b);
        prop_assert_eq!(a == b, ma == mb);
    }

    #[test]
    fn cmac_block_count_formula(len in 0usize..5000) {
        let blocks = Cmac::blocks_for_len(len);
        prop_assert_eq!(blocks, std::cmp::max(1, len.div_ceil(16)) as u64);
    }

    #[test]
    fn authenticated_string_tamper_evident(
        contents in prop::collection::vec(any::<u8>(), 1..100),
        flip in any::<usize>(),
    ) {
        let key = MacKey::from_seed(7);
        let s = AuthenticatedString::build(&key, contents.clone());
        prop_assert!(s.verify(&key));
        let mut bytes = s.to_bytes();
        let idx = 4 + flip % (bytes.len() - 4); // any byte after the length
        bytes[idx] ^= 1;
        let parsed = AuthenticatedString::parse(&bytes).unwrap();
        prop_assert!(!parsed.verify(&key), "flip at {idx} must be detected");
    }

    #[test]
    fn capability_set_roundtrip(values in prop::collection::btree_set(any::<u32>(), 0..50)) {
        let set: CapabilitySet = values.iter().copied().collect();
        let parsed = CapabilitySet::parse(&set.to_bytes()).unwrap();
        prop_assert_eq!(&parsed, &set);
        for v in &values {
            prop_assert!(set.contains(*v));
        }
        prop_assert_eq!(set.len(), values.len());
    }

    #[test]
    fn encoded_call_mac_tamper_evident(
        nr in any::<u16>(),
        site in any::<u32>(),
        block in any::<u32>(),
        imm in any::<u32>(),
        delta in 1u32..,
    ) {
        let key = MacKey::from_seed(3);
        let call = EncodedCall {
            syscall_nr: nr,
            descriptor: PolicyDescriptor::new().with_call_site().with_immediate_arg(0),
            call_site: site,
            block_id: block,
            args: vec![(0, EncodedArg::Immediate(imm))],
            pred_set: None,
            lb_ptr: None,
        };
        let mac = call.mac(&key);
        let mut tampered = call.clone();
        tampered.args[0].1 = EncodedArg::Immediate(imm.wrapping_add(delta));
        prop_assert_ne!(tampered.mac(&key), mac);
        let mut moved = call.clone();
        moved.call_site = site.wrapping_add(delta);
        prop_assert_ne!(moved.mac(&key), mac);
    }

    #[test]
    fn encoding_is_deterministic_and_injective_on_args(
        a in any::<u32>(), b in any::<u32>()
    ) {
        let mk = |v| EncodedCall {
            syscall_nr: 1,
            descriptor: PolicyDescriptor::new().with_immediate_arg(0),
            call_site: 0,
            block_id: 0,
            args: vec![(0, EncodedArg::Immediate(v))],
            pred_set: None,
            lb_ptr: None,
        };
        prop_assert_eq!(encode_call(&mk(a)) == encode_call(&mk(b)), a == b);
    }

    #[test]
    fn pattern_hint_soundness(
        prefix in "[a-z]{0,6}",
        choice in prop::sample::select(vec!["foo", "bar", "qux"]),
        middle in "[a-z]{0,8}",
        suffix in "[a-z]{0,6}",
    ) {
        // Build an input that matches pattern  prefix{foo,bar,qux}*suffix.
        let pattern = Pattern::parse(&format!("{prefix}{{foo,bar,qux}}*{suffix}")).unwrap();
        let input = format!("{prefix}{choice}{middle}{suffix}");
        let hint = pattern.produce_hint(input.as_bytes());
        prop_assert!(hint.is_some(), "matching input must produce a hint");
        prop_assert!(pattern.match_with_hint(input.as_bytes(), &hint.unwrap()));
        // A non-matching input (wrong tail) produces no hint.
        let bad = format!("{prefix}z{choice}{middle}{suffix}X");
        if let Some(h) = pattern.produce_hint(bad.as_bytes()) {
            prop_assert!(pattern.match_with_hint(bad.as_bytes(), &h));
        }
    }

    #[test]
    fn sof_roundtrip(
        entry in any::<u32>(),
        text in prop::collection::vec(any::<u8>(), 0..256),
        data in prop::collection::vec(any::<u8>(), 0..128),
        nsyms in 0usize..5,
    ) {
        let mut b = Binary::new(entry);
        b.set_relocatable(true);
        let ti = b.push_section(Section::new(".text", 0x1000, text.clone(), SectionFlags::RX));
        b.push_section(Section::new(".data", 0x8000, data, SectionFlags::RW));
        for i in 0..nsyms {
            b.push_symbol(Symbol {
                name: format!("sym{i}"),
                addr: 0x1000 + i as u32,
                kind: if i % 2 == 0 { SymbolKind::Func } else { SymbolKind::Object },
            });
        }
        if text.len() >= 4 {
            b.push_relocation(Relocation { section: ti, offset: 0 });
        }
        let parsed = Binary::from_bytes(&b.to_bytes()).unwrap();
        prop_assert_eq!(parsed, b);
    }

    #[test]
    fn sof_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = Binary::from_bytes(&bytes);
    }

    #[test]
    fn assembler_roundtrips_constants(v in any::<u32>()) {
        let src = format!(".text\nmain:\n    movi r3, {v}\n    halt\n");
        let b = asc::asm::assemble(&src).unwrap();
        let text = b.section_by_name(".text").unwrap();
        let i = Instruction::decode(&text.data[..8]).unwrap();
        prop_assert_eq!(i, Instruction::movi(Reg::R3, v));
    }
}

#[test]
fn compiled_expressions_match_host_arithmetic() {
    // Differential test: random expression trees evaluated by the guest
    // must agree with host evaluation.
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    for _ in 0..25 {
        let a: u32 = rng.gen_range(0..1000);
        let b: u32 = rng.gen_range(1..1000);
        let c: u32 = rng.gen_range(0..1000);
        let shift: u32 = rng.gen_range(0..8);
        let expr = format!("(({a} + {b}) * {c} ^ ({a} >> {shift})) % 251 + ({b} / 7) % 64");
        let host = ((a.wrapping_add(b).wrapping_mul(c)) ^ (a >> shift)) % 251 + (b / 7) % 64;
        let src = format!("fn main() {{ return {expr}; }}");
        let binary =
            asc::workloads::build_source(&src, asc::kernel::Personality::Linux).unwrap();
        let mut kernel =
            asc::kernel::Kernel::new(asc::kernel::KernelOptions::plain(
                asc::kernel::Personality::Linux,
            ));
        kernel.set_brk(binary.highest_addr());
        let mut machine = asc::vm::Machine::load(&binary, kernel).unwrap();
        let outcome = machine.run(1_000_000);
        assert_eq!(outcome, asc::vm::RunOutcome::Exited(host), "{expr}");
    }
}
