//! Property-based tests across crate boundaries: encoding round trips,
//! cryptographic tamper-evidence, pattern soundness, and the assembler/
//! disassembler agreement. Cases are drawn from `asc-testkit`'s seeded
//! generator so the suite is deterministic and dependency-free.

use asc::core::{encode_call, EncodedArg, EncodedCall, Pattern, PolicyDescriptor};
use asc::crypto::{AuthenticatedString, CapabilitySet, Cmac, MacKey};
use asc::isa::{Instruction, Opcode, Reg};
use asc::object::{Binary, Relocation, Section, SectionFlags, Symbol, SymbolKind};
use asc_testkit::{check, Rng};
use std::collections::BTreeSet;

fn random_instruction(rng: &mut Rng) -> Instruction {
    Instruction {
        op: Opcode::from_byte(rng.range_u32(0, 39) as u8).expect("in range"),
        rd: Reg::new(rng.range_u32(0, 16) as u8),
        rs1: Reg::new(rng.range_u32(0, 16) as u8),
        rs2: Reg::new(rng.range_u32(0, 16) as u8),
        imm: rng.next_u32(),
    }
}

#[test]
fn instruction_encode_decode_roundtrip() {
    check(0x150a, 256, |rng| {
        let instr = random_instruction(rng);
        let decoded = Instruction::decode(&instr.encode()).unwrap();
        assert_eq!(decoded, instr);
    });
}

#[test]
fn cmac_distinguishes_messages() {
    check(0xc3ac, 64, |rng| {
        let a = rng.bytes(0, 200);
        let b = rng.bytes(0, 200);
        let key = MacKey::from_seed(1);
        let ma = key.mac(&a);
        let mb = key.mac(&b);
        assert_eq!(a == b, ma == mb);
    });
}

#[test]
fn cmac_block_count_formula() {
    check(0xb10c, 128, |rng| {
        let len = rng.range_usize(0, 5000);
        let blocks = Cmac::blocks_for_len(len);
        assert_eq!(blocks, std::cmp::max(1, len.div_ceil(16)) as u64);
    });
}

#[test]
fn authenticated_string_tamper_evident() {
    check(0x7a3e, 64, |rng| {
        let contents = rng.bytes(1, 100);
        let key = MacKey::from_seed(7);
        let s = AuthenticatedString::build(&key, contents);
        assert!(s.verify(&key));
        let mut bytes = s.to_bytes();
        // Any byte after the length field must be covered.
        let idx = rng.range_usize(4, bytes.len());
        bytes[idx] ^= 1;
        let parsed = AuthenticatedString::parse(&bytes).unwrap();
        assert!(!parsed.verify(&key), "flip at {idx} must be detected");
    });
}

#[test]
fn capability_set_roundtrip() {
    check(0xca55, 64, |rng| {
        let values: BTreeSet<u32> = (0..rng.range_usize(0, 50))
            .map(|_| rng.next_u32())
            .collect();
        let set: CapabilitySet = values.iter().copied().collect();
        let parsed = CapabilitySet::parse(&set.to_bytes()).unwrap();
        assert_eq!(parsed, set);
        for v in &values {
            assert!(set.contains(*v));
        }
        assert_eq!(set.len(), values.len());
    });
}

#[test]
fn encoded_call_mac_tamper_evident() {
    check(0xeca1, 64, |rng| {
        let nr = rng.next_u32() as u16;
        let site = rng.next_u32();
        let block = rng.next_u32();
        let imm = rng.next_u32();
        let delta = rng.range_u32(1, u32::MAX);
        let key = MacKey::from_seed(3);
        let call = EncodedCall {
            syscall_nr: nr,
            descriptor: PolicyDescriptor::new()
                .with_call_site()
                .with_immediate_arg(0),
            call_site: site,
            block_id: block,
            args: vec![(0, EncodedArg::Immediate(imm))],
            pred_set: None,
            lb_ptr: None,
        };
        let mac = call.mac(&key);
        let mut tampered = call.clone();
        tampered.args[0].1 = EncodedArg::Immediate(imm.wrapping_add(delta));
        assert_ne!(tampered.mac(&key), mac);
        let mut moved = call.clone();
        moved.call_site = site.wrapping_add(delta);
        assert_ne!(moved.mac(&key), mac);
    });
}

#[test]
fn encoding_is_deterministic_and_injective_on_args() {
    check(0x13c7, 128, |rng| {
        let a = rng.next_u32();
        // Mix equal and unequal pairs.
        let b = if rng.chance(1, 4) { a } else { rng.next_u32() };
        let mk = |v| EncodedCall {
            syscall_nr: 1,
            descriptor: PolicyDescriptor::new().with_immediate_arg(0),
            call_site: 0,
            block_id: 0,
            args: vec![(0, EncodedArg::Immediate(v))],
            pred_set: None,
            lb_ptr: None,
        };
        assert_eq!(encode_call(&mk(a)) == encode_call(&mk(b)), a == b);
    });
}

#[test]
fn pattern_hint_soundness() {
    check(0x9a77, 64, |rng| {
        let prefix = rng.lowercase(0, 7);
        let choice = *rng.pick(&["foo", "bar", "qux"]);
        let middle = rng.lowercase(0, 9);
        let suffix = rng.lowercase(0, 7);
        // Build an input that matches pattern  prefix{foo,bar,qux}*suffix.
        let pattern = Pattern::parse(&format!("{prefix}{{foo,bar,qux}}*{suffix}")).unwrap();
        let input = format!("{prefix}{choice}{middle}{suffix}");
        let hint = pattern.produce_hint(input.as_bytes());
        assert!(hint.is_some(), "matching input must produce a hint");
        assert!(pattern.match_with_hint(input.as_bytes(), &hint.unwrap()));
        // A hint-carrying claim about a non-matching input must not pass
        // unless the input genuinely matches.
        let bad = format!("{prefix}z{choice}{middle}{suffix}X");
        if let Some(h) = pattern.produce_hint(bad.as_bytes()) {
            assert!(pattern.match_with_hint(bad.as_bytes(), &h));
        }
    });
}

#[test]
fn sof_roundtrip() {
    check(0x50f0, 64, |rng| {
        let entry = rng.next_u32();
        let text = rng.bytes(0, 256);
        let data = rng.bytes(0, 128);
        let nsyms = rng.range_usize(0, 5);
        let mut b = Binary::new(entry);
        b.set_relocatable(true);
        let ti = b.push_section(Section::new(
            ".text",
            0x1000,
            text.clone(),
            SectionFlags::RX,
        ));
        b.push_section(Section::new(".data", 0x8000, data, SectionFlags::RW));
        for i in 0..nsyms {
            b.push_symbol(Symbol {
                name: format!("sym{i}"),
                addr: 0x1000 + i as u32,
                kind: if i % 2 == 0 {
                    SymbolKind::Func
                } else {
                    SymbolKind::Object
                },
            });
        }
        if text.len() >= 4 {
            b.push_relocation(Relocation {
                section: ti,
                offset: 0,
            });
        }
        let parsed = Binary::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(parsed, b);
    });
}

#[test]
fn sof_parser_never_panics() {
    check(0x50f1, 128, |rng| {
        let bytes = rng.bytes(0, 300);
        let _ = Binary::from_bytes(&bytes);
    });
}

#[test]
fn assembler_roundtrips_constants() {
    check(0xa53b, 32, |rng| {
        let v = rng.next_u32();
        let src = format!(".text\nmain:\n    movi r3, {v}\n    halt\n");
        let b = asc::asm::assemble(&src).unwrap();
        let text = b.section_by_name(".text").unwrap();
        let i = Instruction::decode(&text.data[..8]).unwrap();
        assert_eq!(i, Instruction::movi(Reg::R3, v));
    });
}

#[test]
fn compiled_expressions_match_host_arithmetic() {
    // Differential test: random expression trees evaluated by the guest
    // must agree with host evaluation.
    let mut rng = Rng::new(42);
    for _ in 0..25 {
        let a: u32 = rng.range_u32(0, 1000);
        let b: u32 = rng.range_u32(1, 1000);
        let c: u32 = rng.range_u32(0, 1000);
        let shift: u32 = rng.range_u32(0, 8);
        let expr = format!("(({a} + {b}) * {c} ^ ({a} >> {shift})) % 251 + ({b} / 7) % 64");
        let host = ((a.wrapping_add(b).wrapping_mul(c)) ^ (a >> shift)) % 251 + (b / 7) % 64;
        let src = format!("fn main() {{ return {expr}; }}");
        let binary = asc::workloads::build_source(&src, asc::kernel::Personality::Linux).unwrap();
        let mut kernel = asc::kernel::Kernel::new(asc::kernel::KernelOptions::plain(
            asc::kernel::Personality::Linux,
        ));
        kernel.set_brk(binary.highest_addr());
        let mut machine = asc::vm::Machine::load(&binary, kernel).unwrap();
        let outcome = machine.run(1_000_000);
        assert_eq!(outcome, asc::vm::RunOutcome::Exited(host), "{expr}");
    }
}
