//! Fault-injection campaign regression tests (reduced-trial versions
//! of the `faults` bench binary's full campaign).

use asc_faults::{run_campaign, run_weakened_demo, CampaignConfig, FaultClass, Outcome};
use asc_kernel::Personality;

#[test]
fn hardened_campaign_has_no_silent_corruption() {
    let report = run_campaign(&CampaignConfig::new(0x0A5C_F417, 3));
    assert_eq!(
        report.rows.len(),
        3 * FaultClass::ALL_EXTENDED.len(),
        "every class (including the origin classes) ran against every workload"
    );
    let problems = report.problems();
    assert!(problems.is_empty(), "campaign failed:\n{problems:#?}");
    assert_eq!(report.total_silent(), 0);
    assert_eq!(report.total_crashed(), 0);
    assert!(
        report.total_killed() > 0,
        "no fault ever provoked a fail-stop kill"
    );
    // The counter skew corrupts verification state consumed by the very
    // trap it fires on, so (apart from saturation no-ops at counter
    // zero) it must kill; and cache corruption must only ever degrade.
    for row in &report.rows {
        if row.class == FaultClass::EpochCounter {
            assert!(
                row.killed > 0,
                "{}: counter skew never killed",
                row.workload
            );
        }
        if row.class.cache_degradation() {
            assert_eq!(row.killed, 0, "{}: cache fault killed", row.workload);
        }
    }
    // The origin classes (gadget-jump, stub-smuggle) provoke kills, and
    // report.problems() — asserted empty above — already requires every
    // one of those kills to be an attributed unrewritten-site fail-stop.
    let origin_kills: u32 = report
        .rows
        .iter()
        .filter(|row| row.class.origin_violation())
        .map(|row| row.killed)
        .sum();
    assert!(origin_kills > 0, "no origin fault ever provoked a kill");
    // Kills are classified by structured reason code, not substring
    // scraping: every killed trial is tallied under a ReasonCode and a
    // sample Alert survives for the report.
    for row in &report.rows {
        let tallied: u32 = row.kill_reasons.iter().map(|(_, n)| n).sum();
        assert_eq!(
            tallied,
            row.killed,
            "{} / {}: kill tally does not match reason codes {:?}",
            row.workload,
            row.class.name(),
            row.kill_reasons
        );
        if row.killed > 0 {
            let alert = row
                .sample_alert
                .as_ref()
                .expect("killed rows carry a sample alert");
            assert!(
                row.kill_reasons.iter().any(|(r, _)| *r == alert.reason()),
                "sample alert reason {:?} missing from tally {:?}",
                alert.reason(),
                row.kill_reasons
            );
        }
    }
    // Graceful degradation is observable in the kernel statistics.
    let degraded: u64 = report
        .rows
        .iter()
        .filter(|row| row.class.cache_degradation())
        .map(|row| row.cache_fallbacks + row.cache_scrubs)
        .sum();
    assert!(degraded > 0, "cache faults never exercised the fallbacks");
}

#[test]
fn campaign_is_deterministic_per_seed() {
    let mut cfg = CampaignConfig::new(0xDE7E_3213, 2);
    cfg.workloads = vec!["calc".into()];
    let summarize = |cfg: &CampaignConfig| {
        run_campaign(cfg)
            .rows
            .iter()
            .map(|r| (r.class.name(), r.killed, r.benign, r.crashed, r.silent))
            .collect::<Vec<_>>()
    };
    assert_eq!(summarize(&cfg), summarize(&cfg));
    let mut other = cfg.clone();
    other.seed ^= 1;
    // Not a hard invariant of the design, but with these trial counts a
    // different seed picks different faults; equality here would hint
    // the seed is being ignored.
    assert_ne!(summarize(&cfg), summarize(&other));
}

#[test]
fn weakened_verifier_yields_silent_corruption() {
    let demo = run_weakened_demo("bison", Personality::Linux, 64);
    assert!(
        demo.silent.is_some(),
        "string faults stayed invisible to the oracle across {} trials",
        demo.scanned
    );
    assert_eq!(
        demo.hardened_outcome,
        Some(Outcome::Killed),
        "the hardened verifier must fail-stop the same fault"
    );
}
