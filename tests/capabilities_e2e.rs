//! End-to-end §5.3: capability (file-descriptor) tracking. With tracking
//! enabled, a descriptor argument must be one actually returned by a
//! previous `open`/`socket`-style call and not yet closed.

use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions};
use asc::kernel::{Kernel, KernelOptions, Personality};
use asc::vm::{Machine, RunOutcome};

fn key() -> MacKey {
    MacKey::from_seed(0xCAB5)
}

fn install(src: &str) -> asc::object::Binary {
    let plain = asc::workloads::build_source(src, Personality::Linux).expect("builds");
    let installer = Installer::new(
        key(),
        InstallerOptions::new(Personality::Linux).with_capability_tracking(),
    );
    installer.install(&plain, "captest").expect("installs").0
}

fn run(binary: &asc::object::Binary) -> (RunOutcome, Kernel) {
    let mut kernel = Kernel::new(KernelOptions {
        capability_tracking: true,
        ..KernelOptions::enforcing(Personality::Linux)
    });
    kernel.set_key(key());
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(binary, kernel).expect("loads");
    let outcome = machine.run(10_000_000);
    (outcome, machine.into_handler())
}

#[test]
fn live_descriptor_passes() {
    let auth = install(
        r#"
        fn main() {
            let fd = open("/etc/motd", 0, 0);
            var buf[16];
            read(fd, buf, 16);
            close(fd);
            return 0;
        }
    "#,
    );
    let (outcome, kernel) = run(&auth);
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
}

#[test]
fn use_after_close_is_killed() {
    // The fd flows from open (so the policy marks it a capability), but
    // by the time read runs it has been closed — revoked capability.
    let auth = install(
        r#"
        fn main() {
            let fd = open("/etc/motd", 0, 0);
            close(fd);
            var buf[16];
            read(fd, buf, 16);     // stale descriptor
            return 0;
        }
    "#,
    );
    let (outcome, kernel) = run(&auth);
    assert!(outcome.is_killed(), "{outcome:?}");
    assert_eq!(
        kernel.alerts()[0].reason(),
        asc::kernel::ReasonCode::CapabilityViolation,
        "{:?}",
        kernel.alerts()
    );
}

#[test]
fn reopened_descriptor_is_valid_again() {
    // Close then reopen: the number is recycled and re-granted.
    let auth = install(
        r#"
        fn main() {
            let a = open("/etc/motd", 0, 0);
            close(a);
            let b = open("/etc/passwd", 0, 0);
            var buf[8];
            read(b, buf, 8);       // b likely reuses a's number
            close(b);
            return 0;
        }
    "#,
    );
    let (outcome, kernel) = run(&auth);
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
}

#[test]
fn tracking_disabled_in_kernel_means_no_capability_kills() {
    // Same binary, kernel without capability tracking: the descriptor
    // bits in the policy are advisory and the stale read just returns
    // EBADF (so the guest still exits 0 here).
    let auth = install(
        r#"
        fn main() {
            let fd = open("/etc/motd", 0, 0);
            close(fd);
            var buf[16];
            read(fd, buf, 16);
            return 0;
        }
    "#,
    );
    let mut kernel = Kernel::new(KernelOptions::enforcing(Personality::Linux));
    kernel.set_key(key());
    kernel.set_brk(auth.highest_addr());
    let mut machine = Machine::load(&auth, kernel).expect("loads");
    let outcome = machine.run(10_000_000);
    assert_eq!(outcome, RunOutcome::Exited(0));
}
