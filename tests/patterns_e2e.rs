//! End-to-end §5.1: pattern policies installed into a real binary and
//! enforced by the kernel. The administrator's metapolicy requires open's
//! path to be constrained; static analysis cannot determine the
//! dynamically computed name, so the administrator fills the hole with
//! the pattern `/tmp/*`. The installer generates the runtime
//! hint-producing code; the kernel verifies the pattern AS and the hint.

use asc::core::ArgPolicy;
use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions, Metapolicy};
use asc::kernel::{Kernel, KernelOptions, Personality, SyscallId};
use asc::vm::{Machine, RunOutcome};

fn key() -> MacKey {
    MacKey::from_seed(0x9A77E2)
}

/// The guest: builds a temp-file name from stdin input and opens it.
/// (An attacker controlling stdin would love to open /etc/passwd.)
const GUEST: &str = r#"
    fn main() {
        var name[64];
        name[0] = '/'; name[1] = 't'; name[2] = 'm'; name[3] = 'p';
        name[4] = '/';
        // Suffix read from stdin (dynamic, analysis can't constrain it).
        var n = read(0, name + 5, 32);
        if (n != 0 && name[5 + n - 1] == 10) { name[5 + n - 1] = 0; }
        else { name[5 + n] = 0; }
        let fd = open(name, 0x241, 420);
        if (fd > 0x7fffffff) { return 2; }
        write(fd, "data", 4);
        close(fd);
        return 0;
    }
"#;

fn install_with_pattern() -> asc::object::Binary {
    let plain = asc::workloads::build_source(GUEST, Personality::Linux).expect("builds");
    let metapolicy = Metapolicy::new()
        .require(Some(SyscallId::Open), 0b001)
        .fill("open", 0, ArgPolicy::Pattern("/tmp/*".into()));
    let installer = Installer::new(
        key(),
        InstallerOptions::new(Personality::Linux).with_metapolicy(metapolicy),
    );
    let (auth, report) = installer.install(&plain, "tmpwriter").expect("installs");
    assert!(
        report.templates.is_empty(),
        "the fill satisfied the metapolicy"
    );
    let open_policy = report
        .policy
        .iter()
        .find(|p| p.syscall_nr == 5 && p.args[0] != ArgPolicy::Any)
        .expect("constrained open");
    assert_eq!(open_policy.args[0], ArgPolicy::Pattern("/tmp/*".into()));
    auth
}

fn run(auth: &asc::object::Binary, stdin: &[u8]) -> (RunOutcome, Kernel) {
    let mut kernel = Kernel::new(KernelOptions::enforcing(Personality::Linux));
    kernel.set_key(key());
    kernel.set_stdin(stdin.to_vec());
    kernel.set_brk(auth.highest_addr());
    let mut machine = Machine::load(auth, kernel).expect("loads");
    let outcome = machine.run(10_000_000);
    (outcome, machine.into_handler())
}

#[test]
fn matching_path_is_allowed() {
    let auth = install_with_pattern();
    let (outcome, kernel) = run(&auth, b"scratch.txt\n");
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
    assert_eq!(kernel.fs().read_file("/tmp/scratch.txt").unwrap(), b"data");
}

#[test]
fn empty_suffix_matches_star() {
    let auth = install_with_pattern();
    // "/tmp/" matches "/tmp/*" (star matches empty) — but opening a
    // directory for writing fails in the kernel; policy-wise it passes.
    let (outcome, kernel) = run(&auth, b"\n");
    // The open returns EISDIR, so the guest exits 2 — but no policy kill.
    assert_eq!(
        outcome,
        RunOutcome::Exited(2),
        "alerts: {:?}",
        kernel.alerts()
    );
    assert!(kernel.alerts().is_empty());
}

#[test]
fn escaping_the_prefix_is_killed() {
    // The §5.4-style escape attempt: "../etc/owned" makes the full path
    // "/tmp/../etc/owned". The *pattern* check still passes (it is a
    // textual match against /tmp/*), which is exactly why the paper pairs
    // patterns with file-name normalisation — but a NUL injection that
    // rewrites the buffer start cannot work because the generated hint
    // code and the kernel both see the same argument bytes.
    // A direct mismatch, though, is killed:
    let auth = install_with_pattern();
    // Overwrite the guest's buffer-building: feed 32 bytes so that the
    // name is still /tmp/-prefixed; then tamper the argument register
    // path by corrupting the first byte of the buffer post-read is not
    // possible from stdin alone. Instead, attack the pattern itself:
    let mut tampered = auth.clone();
    let idx = tampered.section_index(".asc").unwrap() as usize;
    let sec = &mut tampered.sections_mut()[idx];
    // Find "/tmp/*" in .asc and rewrite it to "/etc/*".
    let pos = sec
        .data
        .windows(6)
        .position(|w| w == b"/tmp/*")
        .expect("pattern stored in .asc");
    sec.data[pos..pos + 5].copy_from_slice(b"/etc/");
    let (outcome, kernel) = run(&tampered, b"x\n");
    assert!(outcome.is_killed(), "{outcome:?}");
    assert_eq!(
        kernel.alerts()[0].reason(),
        asc::kernel::ReasonCode::BadPattern,
        "{:?}",
        kernel.alerts()
    );
}

#[test]
fn non_matching_argument_is_killed() {
    // Force a mismatch honestly: install a *stricter* pattern than the
    // program's behaviour — the administrator constrains open to
    // /tmp/log-*, but the program builds /tmp/<stdin>.
    let plain = asc::workloads::build_source(GUEST, Personality::Linux).expect("builds");
    let metapolicy = Metapolicy::new()
        .require(Some(SyscallId::Open), 0b001)
        .fill("open", 0, ArgPolicy::Pattern("/tmp/log-*".into()));
    let installer = Installer::new(
        key(),
        InstallerOptions::new(Personality::Linux).with_metapolicy(metapolicy),
    );
    let (auth, _) = installer.install(&plain, "tmpwriter").expect("installs");
    // Compliant input: suffix starts with "log-".
    let (outcome, kernel) = run(&auth, b"log-1\n");
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
    // Non-compliant input: pattern mismatch at the open.
    let (outcome, kernel) = run(&auth, b"evil\n");
    assert!(outcome.is_killed(), "{outcome:?}");
    assert_eq!(
        kernel.alerts()[0].reason(),
        asc::kernel::ReasonCode::PatternMismatch,
        "{:?}",
        kernel.alerts()
    );
}

#[test]
fn unsupported_pattern_forms_degrade_with_warning() {
    let plain = asc::workloads::build_source(GUEST, Personality::Linux).expect("builds");
    let metapolicy = Metapolicy::new()
        .require(Some(SyscallId::Open), 0b001)
        .fill("open", 0, ArgPolicy::Pattern("/tmp/{a,b}*".into()));
    let installer = Installer::new(
        key(),
        InstallerOptions::new(Personality::Linux).with_metapolicy(metapolicy),
    );
    let (auth, report) = installer.install(&plain, "tmpwriter").expect("installs");
    assert!(report
        .warnings
        .iter()
        .any(|w| w.contains("not of the supported")));
    // Still runs (the argument just isn't pattern-constrained).
    let (outcome, _) = run(&auth, b"anything\n");
    assert_eq!(outcome, RunOutcome::Exited(0));
}
