//! Headline-result regression tests: the key numbers from the paper's
//! evaluation must keep reproducing. (The bench binaries print the full
//! tables; these tests pin the load-bearing facts.)

use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions};
use asc::kernel::Personality;
use asc::monitors::{trace_names, train};
use asc::workloads::{build, measure, program, run_plain};

fn key() -> MacKey {
    MacKey::from_seed(0x0DD5_EED5)
}

fn asc_count(name: &str, personality: Personality) -> usize {
    let spec = program(name).expect("registered");
    let binary = build(spec, personality).expect("builds");
    let installer = Installer::new(key(), InstallerOptions::new(personality));
    let (policy, _, _) = installer.generate_policy(&binary, name).expect("analyzes");
    policy.distinct_syscalls().len()
}

fn systrace_count(name: &str) -> usize {
    let spec = program(name).expect("registered");
    let binary = build(spec, Personality::OpenBsd).expect("builds");
    let (outcome, kernel) = run_plain(spec, &binary, Personality::OpenBsd);
    assert!(outcome.is_success());
    train(name, [trace_names(&kernel)]).entry_count()
}

#[test]
fn table1_policy_counts_match_the_paper_exactly() {
    // Paper Table 1: (ASC Linux, ASC OpenBSD, Systrace OpenBSD).
    for (name, linux, bsd, systrace) in [
        ("bison", 31, 31, 24),
        ("calc", 54, 51, 24),
        ("screen", 67, 63, 55),
    ] {
        assert_eq!(asc_count(name, Personality::Linux), linux, "{name} linux");
        assert_eq!(asc_count(name, Personality::OpenBsd), bsd, "{name} openbsd");
        assert_eq!(systrace_count(name), systrace, "{name} systrace");
    }
}

#[test]
fn table2_key_rows_hold() {
    let spec = program("bison").expect("registered");
    let binary = build(spec, Personality::OpenBsd).expect("builds");
    let installer = Installer::new(key(), InstallerOptions::new(Personality::OpenBsd));
    let (policy, _, warnings) = installer
        .generate_policy(&binary, "bison")
        .expect("analyzes");
    let names: Vec<&str> = policy
        .distinct_syscalls()
        .iter()
        .map(|&nr| Personality::OpenBsd.name_of(nr))
        .collect();
    // ASC-only rows: indirection and cold paths.
    for expected in [
        "__syscall",
        "getpid",
        "gettimeofday",
        "kill",
        "sysconf",
        "writev",
    ] {
        assert!(names.contains(&expected), "{expected} in {names:?}");
    }
    // ASC-missing rows: disassembly failure hides close; mmap hides
    // behind __syscall.
    assert!(!names.contains(&"close"));
    assert!(!names.contains(&"mmap"));
    assert!(warnings.iter().any(|w| w.contains("could not disassemble")));

    // Systrace-side: the trained policy's aliases cover never-executed
    // path-based calls (the over-permission the paper calls out).
    let (outcome, kernel) = run_plain(spec, &binary, Personality::OpenBsd);
    assert!(outcome.is_success());
    let st = train("bison", [trace_names(&kernel)]);
    for alias_covered in ["mkdir", "rmdir", "unlink", "readlink"] {
        assert!(st.permits(alias_covered), "{alias_covered}");
        assert!(st.permit_reason(alias_covered).unwrap().starts_with("fs"));
    }
    assert!(!st.permits("socket"), "cold non-fs calls stay denied");
}

#[test]
fn table3_argument_coverage_in_paper_band() {
    for name in ["bison", "calc", "screen", "tar"] {
        let spec = program(name).expect("registered");
        let binary = build(spec, Personality::Linux).expect("builds");
        let installer = Installer::new(key(), InstallerOptions::new(Personality::Linux));
        let (_, stats, _) = installer.generate_policy(&binary, name).expect("analyzes");
        let pct = stats.auth as f64 / stats.args as f64 * 100.0;
        assert!(
            (25.0..45.0).contains(&pct),
            "{name}: {pct:.1}% authenticated args (paper: 30-40%)"
        );
        assert!(stats.out_params > 0, "{name} has output-only args");
        assert!(
            stats.sites > stats.calls,
            "{name}: more sites than distinct calls"
        );
    }
}

#[test]
fn table6_overhead_shape() {
    // Spot-check the two extremes of Table 6: mcf (CPU-bound, lowest
    // overhead) and pyramid (syscall-bound, highest).
    let run = |name: &str, pid| {
        let spec = program(name).expect("registered");
        let plain = build(spec, Personality::Linux).expect("builds");
        let installer = Installer::new(
            key(),
            InstallerOptions::new(Personality::Linux).with_program_id(pid),
        );
        let (auth, _) = installer.install(&plain, name).expect("installs");
        let base = measure(spec, &plain, Personality::Linux, None);
        assert!(base.outcome.is_success());
        let with = measure(spec, &auth, Personality::Linux, Some(key()));
        assert!(
            with.outcome.is_success(),
            "{name}: {:?}",
            with.kernel.alerts()
        );
        (with.cycles as f64 - base.cycles as f64) / base.cycles as f64 * 100.0
    };
    let mcf = run("mcf", 61);
    let pyramid = run("pyramid", 62);
    assert!(mcf < 1.5, "mcf overhead {mcf:.2}% (paper: 0.73%)");
    assert!(
        (5.0..11.0).contains(&pyramid),
        "pyramid overhead {pyramid:.2}% (paper: 7.92%)"
    );
    assert!(pyramid > 4.0 * mcf, "syscall-bound must dominate CPU-bound");
}

#[test]
fn attacks_matrix() {
    use asc::attacks::{frankenstein::run_frankenstein, AttackLab};
    let lab = AttackLab::new(key());
    assert!(lab.shellcode_attack(false).is_success());
    assert!(lab.shellcode_attack(true).is_blocked());
    assert!(lab.mimicry_attack().is_blocked());
    assert!(lab.non_control_data_attack(false).is_success());
    assert!(lab.non_control_data_attack(true).is_blocked());
    assert!(run_frankenstein(&key(), false).is_success());
    assert!(run_frankenstein(&key(), true).is_blocked());
}

#[test]
fn attack_alerts_name_the_violated_check() {
    // Each blocked attack must be stopped by the *right* verification
    // layer, pinned by the structured reason code (and offending syscall)
    // in the administrator alert — so a refactor that keeps attacks
    // blocked but routes them through the wrong check still fails.
    use asc::attacks::{frankenstein::run_frankenstein, AttackLab, AttackOutcome};
    use asc::kernel::ReasonCode;
    let expect = |name: &str, outcome: AttackOutcome, reason: ReasonCode, syscall: &str| {
        let AttackOutcome::Blocked(alert) = outcome else {
            panic!("{name}: expected Blocked, got {outcome:?}");
        };
        assert_eq!(alert.reason(), reason, "{name}: {alert}");
        assert_eq!(alert.name, syscall, "{name}: {alert}");
    };
    let lab = AttackLab::new(key()).with_verify_cache();
    expect(
        "shellcode",
        lab.shellcode_attack(true),
        ReasonCode::BadCallMac,
        "execve",
    );
    expect(
        "mimicry",
        lab.mimicry_attack(),
        ReasonCode::BadCallMac,
        "exit",
    );
    expect(
        "non-control-data",
        lab.non_control_data_attack(true),
        ReasonCode::BadStringMac,
        "execve",
    );
    expect(
        "stale-cache string rewrite",
        lab.stale_cache_string_attack(),
        ReasonCode::BadStringMac,
        "access",
    );
    expect(
        "stale-cache state replay",
        lab.stale_cache_state_replay_attack(),
        ReasonCode::BadPolicyState,
        "access",
    );
    expect(
        "frankenstein",
        run_frankenstein(&key(), true),
        ReasonCode::NotInPredecessorSet,
        "write",
    );
    // The human-readable rendering stays stable: fail-stop preamble plus
    // the violation text and offending call.
    let AttackOutcome::Blocked(alert) = lab.shellcode_attack(true) else {
        unreachable!("pinned blocked above");
    };
    let rendered = alert.to_string();
    assert!(rendered.starts_with("ALERT: pid 1 killed:"), "{rendered:?}");
    assert!(rendered.contains("call MAC mismatch"), "{rendered:?}");
    assert!(rendered.contains("`execve`"), "{rendered:?}");
    // Single-process kernels attribute kills to pid 1; under a scheduler
    // the pid flows into the alert instead of being a fixed placeholder.
    assert_eq!(alert.pid, 1);
    let mut scheduled = alert.clone();
    scheduled.pid = 7;
    assert!(
        scheduled.to_string().starts_with("ALERT: pid 7 killed:"),
        "{scheduled}"
    );
}

#[test]
fn microbench_per_call_costs_match_table4_originals() {
    // The cost model's unmodified-syscall cycles were calibrated to the
    // paper's Table 4 "Original Cost" column; pin them.
    use asc::kernel::{CostModel, SyscallId};
    let m = CostModel::default();
    let total = |id, bytes| m.trap_base + m.handler_cost(id, bytes);
    assert!((1050..1250).contains(&total(SyscallId::Getpid, 0)));
    assert!((1300..1500).contains(&total(SyscallId::Gettimeofday, 0)));
    assert!((6900..7700).contains(&total(SyscallId::Read, 4096)));
    assert!((38000..41000).contains(&total(SyscallId::Write, 4096)));
    assert!((1050..1300).contains(&total(SyscallId::Brk, 0)));
}
