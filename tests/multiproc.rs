//! Cross-process isolation properties of the multi-process kernel.
//!
//! The scheduler time-slices N machines on the shared virtual cycle
//! clock; each process owns its kernel (policy key, anti-replay counter,
//! alert log, stats) and a pid namespace in the shared verify cache.
//! These tests pin the isolation contract:
//!
//! * **(a) interleaving-independence** — under any seeded interleaving,
//!   every process's stdout, stderr, stats, filesystem digest, and
//!   counter are bit-identical to its solo run;
//! * **(b) kill isolation** — killing pid A mid-schedule leaves pid B's
//!   counter, cache epoch, and policy state untouched;
//! * **(c) replay rejection** — a policy-state cell captured from pid A
//!   is rejected when presented by pid B, even for the same binary;
//! * **determinism** — the same seed reproduces the interleaving, the
//!   aggregate stats, and the rendered server table bit-for-bit, and
//!   different seeds still agree on every per-pid result.

use std::sync::OnceLock;

use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions};
use asc::kernel::{
    FileSystem, Kernel, KernelOptions, KernelStats, Personality, ReasonCode, VerifyTier,
};
use asc::object::Binary;
use asc::sched::{ProcState, Process, SchedConfig, SchedPolicy, Scheduler};
use asc::vm::Machine;
use asc::workloads::{build, flow_graph_of, program, ProgramSpec, RUN_BUDGET};

const PERSONALITY: Personality = Personality::Linux;
const WORKLOADS: [&str; 3] = ["bison", "calc", "tar"];

fn key() -> MacKey {
    MacKey::from_seed(0x3117_0AC5)
}

/// Observables of a process's solo (unscheduled) run.
struct Solo {
    exit: u32,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    stats: KernelStats,
    fs_digest: u64,
    counter: u64,
}

struct Built {
    spec: &'static ProgramSpec,
    auth: Binary,
    solo: Solo,
}

static FLEET: OnceLock<Vec<Built>> = OnceLock::new();

fn fleet() -> &'static [Built] {
    FLEET.get_or_init(|| {
        WORKLOADS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let spec = program(name).expect("workload is registered");
                let plain = build(spec, PERSONALITY).expect("workload builds");
                let installer = Installer::new(
                    key(),
                    InstallerOptions::new(PERSONALITY).with_program_id(0x0AB0 + i as u16),
                );
                let (auth, _) = installer.install(&plain, spec.name).expect("installs");
                let solo = solo_run(spec, &auth);
                Built { spec, auth, solo }
            })
            .collect()
    })
}

fn machine_for(spec: &ProgramSpec, auth: &Binary) -> Machine<Kernel> {
    machine_for_tier(spec, auth, VerifyTier::Mac)
}

/// [`machine_for`] under an explicit verification tier; the flow tiers
/// get the binary's installed digraph.
fn machine_for_tier(spec: &ProgramSpec, auth: &Binary, tier: VerifyTier) -> Machine<Kernel> {
    let mut fs = FileSystem::new();
    (spec.setup_fs)(&mut fs);
    let opts = KernelOptions::enforcing(PERSONALITY)
        .with_verify_cache()
        .with_tier(tier);
    let mut kernel = Kernel::with_fs(opts, fs);
    kernel.set_key(key());
    if tier.checks_flow() {
        kernel.set_flow_graph(flow_graph_of(auth, &key()));
    }
    kernel.set_stdin(spec.stdin.to_vec());
    kernel.set_brk(auth.highest_addr());
    Machine::load(auth, kernel).expect("workload fits in guest memory")
}

/// Solo observables under an explicit tier (per-tier `stats` differ:
/// the flow tiers charge different verification cycles).
fn solo_tier(spec: &ProgramSpec, auth: &Binary, tier: VerifyTier) -> Solo {
    let mut machine = machine_for_tier(spec, auth, tier);
    let outcome = machine.run(RUN_BUDGET);
    let exit = match outcome {
        asc::vm::RunOutcome::Exited(code) => code,
        other => panic!(
            "{}: solo {} run did not exit: {other:?}",
            spec.name,
            tier.name()
        ),
    };
    let kernel = machine.into_handler();
    Solo {
        exit,
        stdout: kernel.stdout().to_vec(),
        stderr: kernel.stderr().to_vec(),
        stats: *kernel.stats(),
        fs_digest: kernel.fs().digest(),
        counter: kernel.policy_counter(),
    }
}

fn solo_run(spec: &ProgramSpec, auth: &Binary) -> Solo {
    let mut machine = machine_for(spec, auth);
    let outcome = machine.run(RUN_BUDGET);
    let exit = match outcome {
        asc::vm::RunOutcome::Exited(code) => code,
        other => panic!("{}: solo run did not exit: {other:?}", spec.name),
    };
    let kernel = machine.into_handler();
    Solo {
        exit,
        stdout: kernel.stdout().to_vec(),
        stderr: kernel.stderr().to_vec(),
        stats: *kernel.stats(),
        fs_digest: kernel.fs().digest(),
        counter: kernel.policy_counter(),
    }
}

/// Spawns `n` processes cycling over the fleet's workloads under a
/// shared-cache scheduler with the given policy and slice.
fn spawn_n(n: usize, policy: SchedPolicy, slice_instrs: u64) -> Scheduler {
    spawn_n_batched(n, policy, slice_instrs, None)
}

/// [`spawn_n`] with an explicit kernel batch-window depth.
fn spawn_n_batched(
    n: usize,
    policy: SchedPolicy,
    slice_instrs: u64,
    batch_depth: Option<usize>,
) -> Scheduler {
    spawn_n_tier(n, policy, slice_instrs, batch_depth, VerifyTier::Mac)
}

/// [`spawn_n_batched`] with an explicit verification tier.
fn spawn_n_tier(
    n: usize,
    policy: SchedPolicy,
    slice_instrs: u64,
    batch_depth: Option<usize>,
    tier: VerifyTier,
) -> Scheduler {
    let fleet = fleet();
    let mut sched = Scheduler::with_shared_cache(SchedConfig {
        policy,
        slice_instrs,
        budget_cycles: RUN_BUDGET,
        batch_depth,
    });
    for m in 0..n {
        let built = &fleet[m % fleet.len()];
        sched.spawn(
            built.spec.name,
            machine_for_tier(built.spec, &built.auth, tier),
        );
    }
    sched
}

fn assert_matches_solo(proc: &Process, solo: &Solo, context: &str) {
    assert_eq!(
        proc.state(),
        &ProcState::Exited(solo.exit),
        "{context}: pid {} ({}) diverged from its solo outcome (alerts: {:?})",
        proc.pid(),
        proc.name(),
        proc.kernel().alerts(),
    );
    let kernel = proc.kernel();
    assert_eq!(kernel.stdout(), &solo.stdout[..], "{context}: stdout");
    assert_eq!(kernel.stderr(), &solo.stderr[..], "{context}: stderr");
    assert_eq!(proc.stats(), solo.stats, "{context}: kernel stats");
    assert_eq!(kernel.fs().digest(), solo.fs_digest, "{context}: fs digest");
    assert_eq!(kernel.policy_counter(), solo.counter, "{context}: counter");
    assert!(kernel.alerts().is_empty(), "{context}: spurious alerts");
}

/// (a) Any interleaving of N processes reproduces each process's solo
/// run byte-for-byte: 24 seeded interleavings per N ∈ {2, 4, 8} (72
/// total), mixing round-robin and seeded-random policies and three
/// preemption granularities.
#[test]
fn any_interleaving_matches_solo_runs() {
    let fleet = fleet();
    for &n in &[2usize, 4, 8] {
        for round in 0..24u64 {
            let slice = [500, 2_000, 10_000][(round % 3) as usize];
            let policy = if round % 6 == 5 {
                SchedPolicy::RoundRobin
            } else {
                SchedPolicy::SeededRandom(0x1507_A7E0 ^ (n as u64) << 32 ^ round)
            };
            let mut sched = spawn_n(n, policy, slice);
            sched.run();
            let context = format!("n={n} round={round} slice={slice} policy={policy:?}");
            for proc in sched.processes() {
                let solo = &fleet[(proc.pid() as usize - 1) % fleet.len()].solo;
                assert_matches_solo(proc, solo, &context);
            }
            // The schedule actually interleaved: every pid got slices.
            for pid in 1..=n as u32 {
                assert!(
                    sched.process(pid).slices() > 1,
                    "{context}: pid {pid} never preempted"
                );
            }
        }
    }
}

/// (b) Killing pid A mid-schedule drops only A's cache namespace and
/// leaves every peer's counter, cache epoch, and policy state exactly
/// where they were; the peers then finish bit-identical to solo.
#[test]
fn external_kill_leaves_peers_untouched() {
    let fleet = fleet();
    for seed in 0..4u64 {
        let mut sched = spawn_n(3, SchedPolicy::SeededRandom(0x0C11_5EED ^ seed), 2_000);
        // Run partway so every process has live verifier state.
        for _ in 0..60 {
            if sched.step().is_none() {
                break;
            }
        }
        let shared = sched
            .shared_cache()
            .expect("shared-cache scheduler")
            .clone();
        let peers: Vec<u32> = [2u32, 3].to_vec();
        let before: Vec<(u64, Option<u64>, KernelStats)> = peers
            .iter()
            .map(|&pid| {
                (
                    sched.process(pid).kernel().policy_counter(),
                    shared.borrow().get(pid).and_then(|c| c.state_epoch()),
                    sched.process(pid).stats(),
                )
            })
            .collect();

        sched.kill(1, "operator kill (seed test)");
        assert!(
            matches!(sched.process(1).state(), ProcState::Killed(_)),
            "pid 1 records the kill"
        );
        assert!(
            shared.borrow().get(1).is_none(),
            "pid 1's cache namespace is dropped on kill"
        );
        for (i, &pid) in peers.iter().enumerate() {
            let (counter, epoch, stats) = &before[i];
            assert_eq!(
                sched.process(pid).kernel().policy_counter(),
                *counter,
                "seed {seed}: pid {pid}'s counter moved on pid 1's kill"
            );
            assert_eq!(
                shared.borrow().get(pid).and_then(|c| c.state_epoch()),
                *epoch,
                "seed {seed}: pid {pid}'s cache epoch moved on pid 1's kill"
            );
            assert_eq!(
                &sched.process(pid).stats(),
                stats,
                "seed {seed}: pid {pid}'s stats moved on pid 1's kill"
            );
        }

        sched.run();
        for &pid in &peers {
            let solo = &fleet[(pid as usize - 1) % fleet.len()].solo;
            assert_matches_solo(
                sched.process(pid),
                solo,
                &format!("seed {seed} after killing pid 1"),
            );
        }
    }
}

/// (c) A policy-state cell captured from pid A is rejected when
/// presented by pid B — same binary, same cell address, but B's
/// in-kernel counter MACs the cell differently, so the replay is a
/// fail-stop `bad-policy-state` kill attributed to B.
#[test]
fn policy_state_replayed_across_pids_is_rejected() {
    let fleet = fleet();
    // Pick a workload whose runs actually carry policy state.
    let built = fleet
        .iter()
        .find(|b| {
            let mut machine = machine_for(b.spec, &b.auth);
            machine.run(RUN_BUDGET);
            machine.into_handler().last_policy_cell().is_some()
        })
        .expect("some workload exercises policy state");

    let mut sched = Scheduler::with_shared_cache(SchedConfig {
        policy: SchedPolicy::RoundRobin,
        slice_instrs: 2_000,
        budget_cycles: RUN_BUDGET,
        batch_depth: None,
    });
    let a = sched.spawn(built.spec.name, machine_for(built.spec, &built.auth));
    let b = sched.spawn(built.spec.name, machine_for(built.spec, &built.auth));

    // Run A alone until it has verified a policy-state call and its
    // counter has pulled ahead of B's (B has not run at all).
    let mut cell = None;
    for _ in 0..2_000 {
        if !sched.process(a).state().is_runnable() {
            break;
        }
        sched.run_slice(a);
        cell = sched.process(a).kernel().last_policy_cell();
        if cell.is_some() && sched.process(a).kernel().policy_counter() > 0 {
            break;
        }
    }
    let cell = cell.expect("pid A verified a policy-state call");
    let c_a = sched.process(a).kernel().policy_counter();
    let c_b = sched.process(b).kernel().policy_counter();
    assert_ne!(
        c_a, c_b,
        "counters must have diverged for the replay to matter"
    );

    // Replay: copy A's live cell bytes over B's cell (same address —
    // identical binaries) through the kernel-level physical path.
    let len = asc::crypto::POLICY_STATE_LEN as u32;
    let bytes = sched
        .process(a)
        .machine()
        .mem()
        .kread(cell, len)
        .expect("A's policy cell is mapped")
        .to_vec();
    sched
        .process_mut(b)
        .machine_mut()
        .mem_mut()
        .kwrite(cell, &bytes)
        .expect("B's policy cell is mapped");

    // B must fail-stop on its next policy-state verification.
    while sched.process(b).state().is_runnable() {
        sched.run_slice(b);
    }
    assert!(
        matches!(sched.process(b).state(), ProcState::Killed(_)),
        "pid B accepted pid A's policy state: {:?}",
        sched.process(b).state()
    );
    let alert = sched
        .process(b)
        .kernel()
        .alerts()
        .last()
        .expect("fail-stop kill carries an alert")
        .clone();
    assert_eq!(alert.reason(), ReasonCode::BadPolicyState, "{alert}");
    assert_eq!(alert.pid, b, "the kill is attributed to the replaying pid");
}

/// Everything the batch path could perturb, captured per pid plus the
/// schedule itself.
#[derive(PartialEq, Debug)]
struct PidWitness {
    state: ProcState,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    stats: KernelStats,
    fs_digest: u64,
    counter: u64,
}

struct RunWitness {
    interleaving: Vec<u32>,
    per_pid: Vec<PidWitness>,
}

fn witness(sched: &Scheduler) -> RunWitness {
    RunWitness {
        interleaving: sched.interleaving().to_vec(),
        per_pid: sched
            .processes()
            .iter()
            .map(|p| PidWitness {
                state: p.state().clone(),
                stdout: p.kernel().stdout().to_vec(),
                stderr: p.kernel().stderr().to_vec(),
                stats: p.stats(),
                fs_digest: p.kernel().fs().digest(),
                counter: p.kernel().policy_counter(),
            })
            .collect(),
    }
}

/// The batched trap path is bit-reproducible: for N ∈ {2, 8, 64, 1024},
/// running the same seeded schedule with and without a kernel batch
/// window yields the identical interleaving (hence identical FNV digest),
/// per-pid kernel stats (including `verify_cycles` / `verify_aes_blocks`),
/// stdout/stderr, filesystem digests, and anti-replay counters — only
/// shared-cache probe traffic may differ, and it must shrink.
#[test]
fn batched_verification_is_bit_identical_at_fleet_sizes() {
    for &n in &[2usize, 8, 64, 1024] {
        let policy = SchedPolicy::SeededRandom(0xF1EE_7000 ^ n as u64);
        let mut unbatched_sched = spawn_n_batched(n, policy, 2_000, None);
        unbatched_sched.run();
        let unbatched_probes = unbatched_sched
            .shared_cache()
            .expect("shared-cache scheduler")
            .borrow()
            .probes();
        let unbatched = witness(&unbatched_sched);
        drop(unbatched_sched);

        let mut batched_sched = spawn_n_batched(n, policy, 2_000, Some(16));
        batched_sched.run();
        let batch = batched_sched.batch_stats();
        let batched_probes = batched_sched
            .shared_cache()
            .expect("shared-cache scheduler")
            .borrow()
            .probes();
        let batched = witness(&batched_sched);

        assert_eq!(
            unbatched.interleaving, batched.interleaving,
            "n={n}: batching changed the schedule"
        );
        assert_eq!(
            unbatched.per_pid.len(),
            batched.per_pid.len(),
            "n={n}: process count"
        );
        for (pid0, (a, b)) in unbatched.per_pid.iter().zip(&batched.per_pid).enumerate() {
            let pid = pid0 + 1;
            assert_eq!(a.state, b.state, "n={n} pid {pid}: state");
            assert_eq!(a.stdout, b.stdout, "n={n} pid {pid}: stdout");
            assert_eq!(a.stderr, b.stderr, "n={n} pid {pid}: stderr");
            assert_eq!(a.stats, b.stats, "n={n} pid {pid}: kernel stats");
            assert_eq!(a.fs_digest, b.fs_digest, "n={n} pid {pid}: fs digest");
            assert_eq!(a.counter, b.counter, "n={n} pid {pid}: counter");
        }
        assert_eq!(
            batch.submitted, batch.drained,
            "n={n}: every submitted call drained"
        );
        assert!(batch.windows > 0, "n={n}: batch windows actually opened");
        assert_eq!(batch.max_depth, 1, "n={n}: synchronous guests");
        assert!(
            batched_probes < unbatched_probes,
            "n={n}: batching must reduce shared-cache probes \
             ({batched_probes} vs {unbatched_probes})"
        );
    }
}

/// Shard-boundary isolation at the scheduler level: killing a pid drops
/// only its namespace, leaving both a *same-shard* neighbour and a
/// *cross-shard* peer bit-untouched — under batched slices, so the
/// surviving pids also witness batch/unbatched equivalence (their solo
/// baselines ran unbatched).
#[test]
fn same_shard_and_cross_shard_pids_survive_a_kill() {
    use asc::core::pid_shard;
    let fleet = fleet();
    // Find the first pid pair that collides in the default 64-shard
    // family, plus a pid in some other shard.
    let shards = asc::core::SharedVerifyCache::new().shard_count();
    let (a, b) = (1u32..)
        .flat_map(|hi| (1..hi).map(move |lo| (lo, hi)))
        .find(|&(lo, hi)| pid_shard(lo, shards) == pid_shard(hi, shards))
        .expect("some pid pair collides");
    let n = b as usize;
    let c = (1..=n as u32)
        .find(|&pid| pid_shard(pid, shards) != pid_shard(a, shards))
        .expect("some pid lands in another shard");

    let mut sched = spawn_n_batched(n, SchedPolicy::SeededRandom(0x5AAD_B0DD), 2_000, Some(8));
    for _ in 0..20 * n {
        if sched.step().is_none() {
            break;
        }
    }
    let shared = sched
        .shared_cache()
        .expect("shared-cache scheduler")
        .clone();
    let before: Vec<(u64, Option<u64>, KernelStats)> = [b, c]
        .iter()
        .map(|&pid| {
            (
                sched.process(pid).kernel().policy_counter(),
                shared
                    .borrow()
                    .get(pid)
                    .and_then(|cache| cache.state_epoch()),
                sched.process(pid).stats(),
            )
        })
        .collect();

    if sched.process(a).state().is_runnable() {
        sched.kill(a, "operator kill (shard-boundary test)");
    } else {
        // Already exited: still exercise the namespace drop.
        shared.borrow_mut().drop_pid(a);
    }
    assert!(
        shared.borrow().get(a).is_none(),
        "pid {a}'s namespace is gone"
    );
    for (i, &pid) in [b, c].iter().enumerate() {
        let kind = if i == 0 { "same-shard" } else { "cross-shard" };
        let (counter, epoch, stats) = &before[i];
        assert_eq!(
            sched.process(pid).kernel().policy_counter(),
            *counter,
            "{kind} pid {pid}: counter moved on pid {a}'s kill"
        );
        assert_eq!(
            shared
                .borrow()
                .get(pid)
                .and_then(|cache| cache.state_epoch()),
            *epoch,
            "{kind} pid {pid}: cache epoch moved on pid {a}'s kill"
        );
        assert_eq!(
            &sched.process(pid).stats(),
            stats,
            "{kind} pid {pid}: stats moved on pid {a}'s kill"
        );
    }

    sched.run();
    for &pid in &[b, c] {
        if pid == a {
            continue;
        }
        let solo = &fleet[(pid as usize - 1) % fleet.len()].solo;
        assert_matches_solo(
            sched.process(pid),
            solo,
            &format!("after killing same-shard neighbour {a}"),
        );
    }
}

/// The fleet harness (churn + hot/cold mix + per-shard report) is
/// deterministic, and batching leaves every result except probe traffic
/// untouched there too.
#[test]
fn fleet_churn_is_deterministic_and_batch_invariant() {
    use asc_bench::fleet::{render_fleet, run_fleet, FleetConfig};
    use asc_bench::server::ServerMode;
    let config = FleetConfig {
        procs: 8,
        seed: 0xF1EE_75ED,
        slice_instrs: 2_000,
        batch_depth: Some(8),
        churn_spawns: 4,
    };
    let first = run_fleet(&config, ServerMode::Warm);
    let second = run_fleet(&config, ServerMode::Warm);
    assert_eq!(
        render_fleet(&first),
        render_fleet(&second),
        "same seed must reproduce the whole fleet report"
    );
    assert_eq!(first.spawned, 12, "churn spawned every replacement");

    let unbatched = run_fleet(
        &FleetConfig {
            batch_depth: None,
            ..config
        },
        ServerMode::Warm,
    );
    assert_eq!(first.interleaving_fnv, unbatched.interleaving_fnv);
    assert_eq!(first.aggregate, unbatched.aggregate);
    assert_eq!(first.rows.len(), unbatched.rows.len());
    for (x, y) in first.rows.iter().zip(&unbatched.rows) {
        assert_eq!(x.shard, y.shard);
        assert_eq!(x.verified, y.verified, "shard {}: verified", x.shard);
        assert_eq!(x.cache_hits, y.cache_hits, "shard {}: warm hits", x.shard);
        assert_eq!(
            (x.p50, x.p90, x.p99),
            (y.p50, y.p90, y.p99),
            "shard {}: quantiles",
            x.shard
        );
    }
    assert!(
        first.shared_probes < unbatched.shared_probes,
        "batching must reduce probes ({} vs {})",
        first.shared_probes,
        unbatched.shared_probes
    );
}

/// Same seed ⇒ bit-identical interleaving, aggregate stats, and rendered
/// server table; different seeds ⇒ different interleavings but identical
/// per-pid results.
#[test]
fn scheduler_is_deterministic_and_order_independent() {
    use asc_bench::server::{render_server, run_server, ServerConfig, ServerMode};
    let config = ServerConfig {
        procs: 4,
        seed: 0x0D15_EA5E,
        slice_instrs: 2_000,
        round_robin: false,
    };
    let first = run_server(&config, ServerMode::Warm);
    let second = run_server(&config, ServerMode::Warm);
    assert_eq!(
        first.interleaving_fnv, second.interleaving_fnv,
        "same seed must reproduce the interleaving"
    );
    assert_eq!(first.aggregate, second.aggregate);
    assert_eq!(render_server(&first), render_server(&second));

    let other = run_server(
        &ServerConfig {
            seed: config.seed + 1,
            ..config
        },
        ServerMode::Warm,
    );
    assert_ne!(
        first.interleaving_fnv, other.interleaving_fnv,
        "a different seed should pick a different interleaving"
    );
    assert_eq!(
        first.aggregate, other.aggregate,
        "aggregate stats are order-independent"
    );
    assert_eq!(first.rows.len(), other.rows.len());
    for (x, y) in first.rows.iter().zip(&other.rows) {
        assert_eq!(x.pid, y.pid);
        assert_eq!(x.workload, y.workload);
        assert_eq!(x.cycles, y.cycles, "pid {}: cycles", x.pid);
        assert_eq!(x.syscalls, y.syscalls, "pid {}: syscalls", x.pid);
        assert_eq!(x.verified, y.verified, "pid {}: verified", x.pid);
        assert_eq!(x.cache_hits, y.cache_hits, "pid {}: cache hits", x.pid);
        assert_eq!(
            (x.p50, x.p90, x.p99),
            (y.p50, y.p90, y.p99),
            "pid {}: quantiles",
            x.pid
        );
    }
}

/// Flow-tier state (`last_syscall`) is per-pid: each process's kernel
/// tracks its own transition chain, so three interleaved workloads show
/// *different* last-syscall values mid-schedule (a shared chain would
/// force them equal — and would kill on every context switch, since one
/// pid's `execve` followed by a peer's `read` is rarely a digraph edge).
/// Killing a pid leaves every peer's flow state exactly where it was,
/// and the survivors still finish bit-identical to their solo runs.
#[test]
fn flow_state_is_per_pid_and_kills_do_not_leak() {
    let fleet = fleet();
    for (ti, &tier) in VerifyTier::ALL
        .iter()
        .enumerate()
        .filter(|(_, t)| t.checks_flow())
    {
        let solos: Vec<Solo> = fleet
            .iter()
            .map(|b| solo_tier(b.spec, &b.auth, tier))
            .collect();
        let mut sched = spawn_n_tier(
            3,
            SchedPolicy::SeededRandom(0xF10A_57A7 ^ ti as u64),
            2_000,
            None,
            tier,
        );
        // Run partway, sampling every pid's flow state after each slice.
        let mut saw_divergence = false;
        let mut saw_state = false;
        for _ in 0..60 {
            if sched.step().is_none() {
                break;
            }
            let last: Vec<Option<u16>> = (1..=3u32)
                .map(|pid| sched.process(pid).kernel().last_syscall())
                .collect();
            saw_state |= last.iter().any(Option::is_some);
            saw_divergence |= last
                .iter()
                .any(|l| l.is_some() && last.iter().any(|m| m.is_some() && m != l));
        }
        assert!(saw_state, "{}: no pid ever dispatched a call", tier.name());
        assert!(
            saw_divergence,
            "{}: three different workloads never disagreed on last_syscall — \
             the flow chain looks shared, not per-pid",
            tier.name()
        );

        // Killing pid 1 must not move any peer's flow state.
        let before: Vec<Option<u16>> = [2u32, 3]
            .iter()
            .map(|&pid| sched.process(pid).kernel().last_syscall())
            .collect();
        sched.kill(1, "operator kill (flow-state test)");
        for (i, &pid) in [2u32, 3].iter().enumerate() {
            assert_eq!(
                sched.process(pid).kernel().last_syscall(),
                before[i],
                "{}: pid {pid}'s flow state moved on pid 1's kill",
                tier.name()
            );
        }

        sched.run();
        for &pid in &[2u32, 3] {
            let solo = &solos[(pid as usize - 1) % fleet.len()];
            assert_matches_solo(
                sched.process(pid),
                solo,
                &format!("{} after killing pid 1", tier.name()),
            );
        }
    }
}

/// Batch windows are tier-transparent: under *every* tier, running the
/// same seeded schedule with and without a batch window yields the
/// identical interleaving, per-pid states, stdout/stderr, kernel stats
/// (including flow-check and MAC cycles), filesystem digests, and
/// counters. The MAC tiers must actually open windows and shrink
/// shared-cache probe traffic; `flow-only` runs no MAC work, so it
/// opens none and probes nothing either way.
#[test]
fn batched_windows_are_bit_identical_under_every_tier() {
    for (ti, &tier) in VerifyTier::ALL.iter().enumerate() {
        let n = 8;
        let policy = SchedPolicy::SeededRandom(0xBA7C_47E0 ^ ti as u64);
        let mut unbatched_sched = spawn_n_tier(n, policy, 2_000, None, tier);
        unbatched_sched.run();
        let unbatched_probes = unbatched_sched
            .shared_cache()
            .expect("shared-cache scheduler")
            .borrow()
            .probes();
        let unbatched = witness(&unbatched_sched);
        drop(unbatched_sched);

        let mut batched_sched = spawn_n_tier(n, policy, 2_000, Some(16), tier);
        batched_sched.run();
        let batch = batched_sched.batch_stats();
        let batched_probes = batched_sched
            .shared_cache()
            .expect("shared-cache scheduler")
            .borrow()
            .probes();
        let batched = witness(&batched_sched);

        let name = tier.name();
        assert_eq!(
            unbatched.interleaving, batched.interleaving,
            "{name}: batching changed the schedule"
        );
        for (pid0, (a, b)) in unbatched.per_pid.iter().zip(&batched.per_pid).enumerate() {
            let pid = pid0 + 1;
            assert_eq!(a, b, "{name} pid {pid}: batched run diverged");
        }
        assert_eq!(
            batch.submitted, batch.drained,
            "{name}: every submitted call drained"
        );
        if tier.checks_mac() {
            assert!(batch.windows > 0, "{name}: batch windows actually opened");
            assert!(
                batched_probes < unbatched_probes,
                "{name}: batching must reduce shared-cache probes \
                 ({batched_probes} vs {unbatched_probes})"
            );
        } else {
            assert_eq!(batch.windows, 0, "{name}: no MAC work, no windows");
            assert_eq!(
                (batched_probes, unbatched_probes),
                (0, 0),
                "{name}: the flow tier never probes the shared cache"
            );
        }
    }
}

/// Origin kills are pid-local: a fleet of benign workloads plus one
/// hostile raw-`SYSCALL`-gadget guest (installed with its `.ascsites`
/// registry) loses exactly the gadget pid — killed with an attributed
/// `unrewritten-site` alert before its smuggled `write` produces a
/// byte — while every peer finishes bit-identical to its solo run, at
/// N ∈ {2, 8, 64}.
#[test]
fn gadget_pid_dies_alone_with_an_attributed_origin_kill() {
    let fleet = fleet();
    let spec = asc::workloads::hostile::hostile("gadget").expect("gadget in the corpus");
    let plain = asc::workloads::hostile::build_hostile(spec).expect("gadget assembles");
    let installer = Installer::new(
        key(),
        InstallerOptions::new(PERSONALITY).with_program_id(0x0AB7),
    );
    let (auth, _) = installer
        .install(&plain, spec.name)
        .expect("gadget installs");

    for &n in &[2usize, 8, 64] {
        let mut sched = spawn_n(n, SchedPolicy::SeededRandom(0x0619_0AD6 ^ n as u64), 2_000);
        let mut kernel = Kernel::new(
            KernelOptions::enforcing(PERSONALITY)
                .with_verify_cache()
                .with_tier(VerifyTier::Mac),
        );
        kernel.set_key(key());
        kernel.set_site_registry(asc::workloads::sites_of(&auth, &key()));
        kernel.set_brk(auth.highest_addr());
        let gadget = sched.spawn(
            spec.name,
            Machine::load(&auth, kernel).expect("gadget fits"),
        );
        sched.run();

        let proc = sched.process(gadget);
        assert!(
            matches!(proc.state(), ProcState::Killed(_)),
            "n={n}: gadget pid survived: {:?}",
            proc.state()
        );
        let alert = proc
            .kernel()
            .alerts()
            .last()
            .expect("origin kill carries an alert");
        assert_eq!(alert.reason(), ReasonCode::UnrewrittenSite, "{alert}");
        assert_eq!(
            alert.pid, gadget,
            "the kill is attributed to the gadget pid"
        );
        assert!(
            proc.kernel().stdout().is_empty(),
            "n={n}: the smuggled write escaped: {:?}",
            String::from_utf8_lossy(proc.kernel().stdout())
        );
        assert!(
            proc.kernel().trace().is_empty(),
            "n={n}: a gadget call was dispatched"
        );

        for proc in sched.processes() {
            if proc.pid() == gadget {
                continue;
            }
            let solo = &fleet[(proc.pid() as usize - 1) % fleet.len()].solo;
            assert_matches_solo(proc, solo, &format!("n={n} with a gadget peer"));
        }
    }
}
