//! Cross-crate integration: source → compile → link → install → enforce,
//! exercising every layer of the reproduction together.

use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions};
use asc::kernel::{Kernel, KernelOptions, Personality};
use asc::vm::{Machine, RunOutcome};

fn key() -> MacKey {
    MacKey::from_seed(0xF00D)
}

const PROGRAM: &str = r#"
    global total;

    fn checksum(buf, n) {
        var sum = 0;
        var i = 0;
        while (i < n) { sum = sum + buf[i] * 31 + (sum >> 27); i = i + 1; }
        return sum;
    }

    fn slurp(path, buf, cap) {
        let fd = open(path, 0, 0);
        if (fd > 0x7fffffff) { return 0; }
        var n = read(fd, buf, cap);
        close(fd);
        return n;
    }

    fn main() {
        var buf[128];
        let n = slurp("/etc/motd", buf, 128);
        total = checksum(buf, n);
        let out = open("/tmp/sum", 0x241, 420);
        var digits[16];
        var v = total;
        var i = 15;
        while (v != 0) { i = i - 1; digits[i] = '0' + v % 10; v = v / 10; }
        write(out, digits + i, 15 - i);
        close(out);
        puts("done\n");
        return 0;
    }
"#;

fn install(personality: Personality) -> (asc::object::Binary, asc::installer::InstallReport) {
    let plain = asc::workloads::build_source(PROGRAM, personality).expect("builds");
    let installer = Installer::new(key(), InstallerOptions::new(personality));
    installer.install(&plain, "pipeline").expect("installs")
}

fn run(binary: &asc::object::Binary, enforce: bool) -> (RunOutcome, Kernel) {
    let opts = if enforce {
        KernelOptions::enforcing(Personality::Linux)
    } else {
        KernelOptions::plain(Personality::Linux)
    };
    let mut kernel = Kernel::new(opts);
    if enforce {
        kernel.set_key(key());
    }
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(binary, kernel).expect("loads");
    let outcome = machine.run(50_000_000);
    (outcome, machine.into_handler())
}

#[test]
fn source_to_enforced_execution() {
    let (auth, report) = install(Personality::Linux);
    assert!(auth.is_authenticated());
    assert!(
        report.stats.auth > 0,
        "some arguments statically determined"
    );
    // Both opens carry string-literal policies.
    let opens: Vec<_> = report.policy.iter().filter(|p| p.syscall_nr == 5).collect();
    assert_eq!(opens.len(), 3, "two inlined sites + the dead stub body");
    let (outcome, kernel) = run(&auth, true);
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "alerts: {:?}",
        kernel.alerts()
    );
    assert_eq!(kernel.stdout(), b"done\n");
    assert!(kernel.fs().read_file("/tmp/sum").unwrap().len() > 3);
    assert_eq!(kernel.stats().verified, kernel.stats().syscalls);
}

#[test]
fn plain_and_enforced_runs_agree() {
    let plain = asc::workloads::build_source(PROGRAM, Personality::Linux).expect("builds");
    let (auth, _) = install(Personality::Linux);
    let (o1, k1) = run(&plain, false);
    let (o2, k2) = run(&auth, true);
    assert_eq!(o1, o2);
    assert_eq!(k1.stdout(), k2.stdout());
    assert_eq!(
        k1.fs().read_file("/tmp/sum").unwrap(),
        k2.fs().read_file("/tmp/sum").unwrap(),
        "installation must not change observable behaviour"
    );
    assert_eq!(k1.stats().syscalls, k2.stats().syscalls);
}

#[test]
fn serialization_roundtrip_preserves_enforcement() {
    // Installed binary -> bytes -> parsed -> still runs enforced.
    let (auth, _) = install(Personality::Linux);
    let bytes = auth.to_bytes();
    let parsed = asc::object::Binary::from_bytes(&bytes).expect("parses");
    assert_eq!(parsed, auth);
    let (outcome, _) = run(&parsed, true);
    assert_eq!(outcome, RunOutcome::Exited(0));
}

#[test]
fn every_text_byte_tamper_is_caught_or_harmless() {
    // Flip each byte of a few authenticated-call gadgets in .text; the
    // process must either behave identically (the byte was, e.g., part of
    // an unconstrained immediate the program overwrites anyway) or be
    // killed / fault — it must never reach a *different* syscall outcome.
    let (auth, report) = install(Personality::Linux);
    let baseline = run(&auth, true);
    assert_eq!(baseline.0, RunOutcome::Exited(0));
    let open_site = report
        .policy
        .iter()
        .find(|p| p.syscall_nr == 5 && p.args[0] != asc::core::ArgPolicy::Any)
        .expect("constrained open");
    let text = auth.section_by_name(".text").unwrap();
    let gadget_start = (open_site.call_site - 6 * 8 - text.addr) as usize;
    let mut exec_divergence = 0;
    for off in gadget_start..gadget_start + 7 * 8 {
        let mut tampered = auth.clone();
        let idx = tampered.section_index(".text").unwrap() as usize;
        tampered.sections_mut()[idx].data[off] ^= 0x01;
        let (outcome, kernel) = run(&tampered, true);
        match outcome {
            RunOutcome::Exited(0) => {
                // Identical observable behaviour is required.
                assert_eq!(kernel.stdout(), baseline.1.stdout(), "offset {off}");
            }
            RunOutcome::Killed(_)
            | RunOutcome::Fault(_)
            | RunOutcome::BadInstruction { .. }
            | RunOutcome::CycleLimit
            | RunOutcome::Exited(_)
            | RunOutcome::Halted => {
                exec_divergence += 1;
            }
        }
    }
    assert!(
        exec_divergence > 0,
        "tampering with the gadget must be observable"
    );
}

#[test]
fn openbsd_policy_generation_works() {
    // The paper ports only *policy generation* to OpenBSD ("We have not
    // yet implemented system call checking in OpenBSD") — and the reason
    // is visible here: the OpenBSD libc's `close` cannot be fully
    // disassembled, so its call site gets no policy and an enforcing
    // OpenBSD kernel would fail-stop legitimate programs at `close`.
    let plain = asc::workloads::build_source(PROGRAM, Personality::OpenBsd).expect("builds");
    let installer = Installer::new(key(), InstallerOptions::new(Personality::OpenBsd));
    let (policy, stats, warnings) = installer
        .generate_policy(&plain, "pipeline")
        .expect("analyzes");
    assert!(stats.sites > 0);
    assert!(warnings.iter().any(|w| w.contains("could not disassemble")));
    assert!(warnings
        .iter()
        .any(|w| w.contains("not statically determined")));
    let close_nr = Personality::OpenBsd
        .nr(asc::kernel::SyscallId::Close)
        .unwrap();
    assert!(
        !policy.distinct_syscalls().contains(&close_nr),
        "close must be missing from the OpenBSD policy (Table 2)"
    );
    // The unmodified binary still runs fine on a non-enforcing OpenBSD
    // kernel.
    let mut kernel = Kernel::new(KernelOptions::plain(Personality::OpenBsd));
    kernel.set_brk(plain.highest_addr());
    let mut machine = Machine::load(&plain, kernel).expect("loads");
    assert_eq!(machine.run(50_000_000), RunOutcome::Exited(0));
}
