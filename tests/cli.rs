//! Integration tests for the `asc` command-line tool.

use std::process::Command;

fn asc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_asc"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("asc-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

const GUEST: &str = r#"
fn main() {
    write(1, "cli says hi\n", 12);
    return 0;
}
"#;

#[test]
fn compile_install_run_roundtrip() {
    let src = tmp("prog.scl");
    let plain = tmp("prog.sof");
    let auth = tmp("prog.asc.sof");
    std::fs::write(&src, GUEST).expect("write source");

    let out = asc()
        .args([
            "compile",
            src.to_str().unwrap(),
            "-o",
            plain.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = asc()
        .args([
            "install",
            plain.to_str().unwrap(),
            "-o",
            auth.to_str().unwrap(),
            "--key-seed",
            "77",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Enforced run with the right key.
    let out = asc()
        .args(["run", auth.to_str().unwrap(), "--key-seed", "77"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), "cli says hi\n");
    assert!(String::from_utf8_lossy(&out.stderr).contains("Exited(0)"));

    // Wrong key: fail-stop with an alert.
    let out = asc()
        .args(["run", auth.to_str().unwrap(), "--key-seed", "78"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("ALERT"));
}

#[test]
fn policy_and_disasm_outputs() {
    let src = tmp("p2.scl");
    let plain = tmp("p2.sof");
    std::fs::write(&src, GUEST).expect("write source");
    asc()
        .args([
            "compile",
            src.to_str().unwrap(),
            "-o",
            plain.to_str().unwrap(),
        ])
        .status()
        .expect("runs");

    let out = asc()
        .args(["policy", plain.to_str().unwrap()])
        .output()
        .expect("runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("distinct syscalls"), "{text}");
    assert!(text.contains("write"), "{text}");

    let out = asc()
        .args(["policy", plain.to_str().unwrap(), "--json"])
        .output()
        .expect("runs");
    let json = asc::core::json::Value::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("valid JSON policy");
    assert!(json.get("policies").is_some());

    let out = asc()
        .args(["disasm", plain.to_str().unwrap()])
        .output()
        .expect("runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("_start:"), "{text}");
    assert!(text.contains("<== syscall"), "{text}");
}

#[test]
fn unknown_command_shows_usage() {
    let out = asc().args(["frobnicate"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn stdin_flag_feeds_the_guest() {
    let src = tmp("echo.scl");
    let plain = tmp("echo.sof");
    let input = tmp("input.txt");
    std::fs::write(
        &src,
        r#"
        fn main() {
            var buf[32];
            let n = read(0, buf, 32);
            write(1, buf, n);
            return 0;
        }
    "#,
    )
    .expect("write");
    std::fs::write(&input, b"piped input").expect("write");
    asc()
        .args([
            "compile",
            src.to_str().unwrap(),
            "-o",
            plain.to_str().unwrap(),
        ])
        .status()
        .expect("runs");
    let out = asc()
        .args([
            "run",
            plain.to_str().unwrap(),
            "--stdin",
            input.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert_eq!(String::from_utf8_lossy(&out.stdout), "piped input");
}
