//! Differential testing: authentication must be behaviour-preserving.
//!
//! Every registered workload runs under three regimes — the plain
//! binary on a plain kernel, the installed binary on an enforcing
//! kernel, and the installed binary on an enforcing kernel with the
//! verified-call cache enabled — and all observable behaviour must be
//! identical: exit status, stdout, stderr, the dispatched-syscall
//! sequence, and the final filesystem tree. (Call-site addresses move
//! when the installer rewrites the text, so the trace comparison is on
//! the `(raw_nr, effective id)` sequence, which is what a monitor
//! observes.)

use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions};
use asc::kernel::{Kernel, Personality, SyscallId};
use asc::vm::RunOutcome;
use asc::workloads::{build, measure, measure_cached, programs, run_plain};

fn key() -> MacKey {
    MacKey::from_seed(0x0DD5_EED5)
}

/// The observables of one run, site addresses excluded.
#[derive(Debug, PartialEq)]
struct Observed {
    outcome: RunOutcome,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    calls: Vec<(u16, SyscallId)>,
    fs_digest: u64,
}

fn observe(outcome: RunOutcome, kernel: &Kernel) -> Observed {
    Observed {
        outcome,
        stdout: kernel.stdout().to_vec(),
        stderr: kernel.stderr().to_vec(),
        calls: kernel
            .trace()
            .iter()
            .map(|entry| (entry.raw_nr, entry.id))
            .collect(),
        fs_digest: kernel.fs().digest(),
    }
}

#[test]
fn every_workload_is_behaviour_identical_across_all_three_regimes() {
    let personality = Personality::Linux;
    let mut total_cache_hits = 0;
    for (index, spec) in programs().iter().enumerate() {
        let plain = build(spec, personality).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let installer = Installer::new(
            key(),
            InstallerOptions::new(personality).with_program_id(0x0D1F + index as u16),
        );
        let (auth, _) = installer
            .install(&plain, spec.name)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));

        let (base_outcome, base_kernel) = run_plain(spec, &plain, personality);
        let base = observe(base_outcome, &base_kernel);
        assert!(
            base.outcome.is_success(),
            "{}: plain run failed: {:?}",
            spec.name,
            base.outcome
        );

        let enforcing = measure(spec, &auth, personality, Some(key()));
        let observed = observe(enforcing.outcome.clone(), &enforcing.kernel);
        assert_eq!(
            base,
            observed,
            "{}: enforcing run diverged from plain (alerts: {:?})",
            spec.name,
            enforcing.kernel.alerts()
        );

        let cached = measure_cached(spec, &auth, personality, key());
        let observed = observe(cached.outcome.clone(), &cached.kernel);
        assert_eq!(
            base,
            observed,
            "{}: cached enforcing run diverged from plain (alerts: {:?})",
            spec.name,
            cached.kernel.alerts()
        );
        total_cache_hits += cached.kernel.stats().cache_hits;
    }
    // Programs that never re-execute a call site legitimately stay cold,
    // but across the suite the warm path must have been exercised.
    assert!(
        total_cache_hits > 0,
        "cache never went warm on any workload"
    );
}
