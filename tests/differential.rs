//! Differential testing: authentication must be behaviour-preserving.
//!
//! Every registered workload runs under three regimes — the plain
//! binary on a plain kernel, the installed binary on an enforcing
//! kernel (cold), and the installed binary on an enforcing kernel with
//! the verified-call cache enabled (warm) — and the two enforcing
//! regimes are swept across every [`VerifyTier`]. All observable
//! behaviour must be identical: exit status, stdout, stderr, the
//! dispatched-syscall sequence, and the final filesystem tree.
//! (Call-site addresses move when the installer rewrites the text, so
//! the trace comparison is on the `(raw_nr, effective id)` sequence,
//! which is what a monitor observes.)

use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions};
use asc::kernel::{Kernel, Personality, SyscallId, VerifyTier};
use asc::vm::RunOutcome;
use asc::workloads::{build, measure_tier, measure_tier_cached, programs, run_plain};

fn key() -> MacKey {
    MacKey::from_seed(0x0DD5_EED5)
}

/// The observables of one run, site addresses excluded.
#[derive(Debug, PartialEq)]
struct Observed {
    outcome: RunOutcome,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    calls: Vec<(u16, SyscallId)>,
    fs_digest: u64,
}

fn observe(outcome: RunOutcome, kernel: &Kernel) -> Observed {
    Observed {
        outcome,
        stdout: kernel.stdout().to_vec(),
        stderr: kernel.stderr().to_vec(),
        calls: kernel
            .trace()
            .iter()
            .map(|entry| (entry.raw_nr, entry.id))
            .collect(),
        fs_digest: kernel.fs().digest(),
    }
}

#[test]
fn every_workload_is_behaviour_identical_across_all_regimes_and_tiers() {
    let personality = Personality::Linux;
    let mut total_cache_hits = 0;
    for (index, spec) in programs().iter().enumerate() {
        let plain = build(spec, personality).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let installer = Installer::new(
            key(),
            InstallerOptions::new(personality).with_program_id(0x0D1F + index as u16),
        );
        let (auth, _) = installer
            .install(&plain, spec.name)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));

        let (base_outcome, base_kernel) = run_plain(spec, &plain, personality);
        let base = observe(base_outcome, &base_kernel);
        assert!(
            base.outcome.is_success(),
            "{}: plain run failed: {:?}",
            spec.name,
            base.outcome
        );

        // One sweep body for every (tier, cold/warm) enforcing regime:
        // the regime is data, not copy-pasted code.
        for &tier in &VerifyTier::ALL {
            for (regime, report) in [
                ("cold", measure_tier(spec, &auth, personality, key(), tier)),
                (
                    "warm",
                    measure_tier_cached(spec, &auth, personality, key(), tier),
                ),
            ] {
                let observed = observe(report.outcome.clone(), &report.kernel);
                assert_eq!(
                    base,
                    observed,
                    "{}: {} {regime} run diverged from plain (alerts: {:?})",
                    spec.name,
                    tier.name(),
                    report.kernel.alerts()
                );
                let stats = report.kernel.stats();
                if tier.checks_mac() {
                    assert!(
                        stats.verify_aes_blocks > 0,
                        "{}: {} {regime}: no MAC work on an enforcing run",
                        spec.name,
                        tier.name()
                    );
                } else {
                    // The flow tier must stay off the AES path entirely
                    // (that is the whole point of its price tag).
                    assert_eq!(
                        stats.verify_aes_blocks, 0,
                        "{}: flow-only {regime} touched AES",
                        spec.name
                    );
                }
                if regime == "warm" {
                    total_cache_hits += stats.cache_hits;
                }
            }
        }
    }
    // Programs that never re-execute a call site legitimately stay cold,
    // but across the suite the warm path must have been exercised.
    assert!(
        total_cache_hits > 0,
        "cache never went warm on any workload"
    );
}
