//! Fleet-health sentinel properties at fleet scale: no-perturbation and
//! telemetry exactness.
//!
//! The sentinel is the continuous-monitoring layer of the fail-stop
//! story, so its contract mirrors the flight recorder's:
//!
//! * **no-perturbation** — observing a fleet (with metrics registries
//!   attached and the sentinel sampling every slice) changes *nothing*
//!   metered: shared clock, interleaving, per-pid cycles, kernel stats,
//!   stdout, states, and counters are bit-identical at
//!   N ∈ {2, 8, 64, 1024} under every verification tier;
//! * **telemetry exactness** — at every fleet size the closed windows
//!   partition the run: per-window deltas sum to the final aggregate
//!   counters and the window spans tile the virtual clock.

use std::sync::OnceLock;

use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions};
use asc::kernel::{
    FileSystem, Kernel, KernelMetrics, KernelOptions, KernelStats, Personality, VerifyTier,
};
use asc::object::Binary;
use asc::sched::{Pid, ProcState, SchedConfig, SchedPolicy, Scheduler};
use asc::sentinel::{Sentinel, SentinelConfig};
use asc::vm::Machine;
use asc::workloads::{build, flow_graph_of, program, ProgramSpec, RUN_BUDGET};

const PERSONALITY: Personality = Personality::Linux;
const WORKLOADS: [&str; 3] = ["bison", "calc", "tar"];

fn key() -> MacKey {
    MacKey::from_seed(0x5E17_0AC5)
}

struct Built {
    spec: &'static ProgramSpec,
    auth: Binary,
}

static FLEET: OnceLock<Vec<Built>> = OnceLock::new();

fn fleet() -> &'static [Built] {
    FLEET.get_or_init(|| {
        WORKLOADS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let spec = program(name).expect("workload is registered");
                let plain = build(spec, PERSONALITY).expect("workload builds");
                let installer = Installer::new(
                    key(),
                    InstallerOptions::new(PERSONALITY).with_program_id(0x5E00 + i as u16),
                );
                let (auth, _) = installer.install(&plain, spec.name).expect("installs");
                Built { spec, auth }
            })
            .collect()
    })
}

fn machine_for_tier(
    spec: &ProgramSpec,
    auth: &Binary,
    tier: VerifyTier,
    with_metrics: bool,
) -> Machine<Kernel> {
    let mut fs = FileSystem::new();
    (spec.setup_fs)(&mut fs);
    let opts = KernelOptions::enforcing(PERSONALITY)
        .with_verify_cache()
        .with_tier(tier);
    let mut kernel = Kernel::with_fs(opts, fs);
    kernel.set_key(key());
    if tier.checks_flow() {
        kernel.set_flow_graph(flow_graph_of(auth, &key()));
    }
    kernel.set_stdin(spec.stdin.to_vec());
    kernel.set_brk(auth.highest_addr());
    if with_metrics {
        kernel.set_metrics(Box::new(KernelMetrics::new()));
    }
    Machine::load(auth, kernel).expect("workload fits in guest memory")
}

fn spawn_n_tier(
    n: usize,
    policy: SchedPolicy,
    batch_depth: Option<usize>,
    tier: VerifyTier,
    with_metrics: bool,
) -> Scheduler {
    let fleet = fleet();
    let mut sched = Scheduler::with_shared_cache(SchedConfig {
        policy,
        slice_instrs: 2_000,
        budget_cycles: RUN_BUDGET,
        batch_depth,
    });
    for m in 0..n {
        let built = &fleet[m % fleet.len()];
        sched.spawn(
            built.spec.name,
            machine_for_tier(built.spec, &built.auth, tier, with_metrics),
        );
    }
    sched
}

/// Everything the sentinel could possibly perturb, captured per run.
#[derive(PartialEq, Debug)]
struct PidWitness {
    state: ProcState,
    cycles: u64,
    stdout: Vec<u8>,
    stats: KernelStats,
    counter: u64,
}

fn witness(sched: &Scheduler) -> (u64, Vec<Pid>, Vec<PidWitness>) {
    (
        sched.clock(),
        sched.interleaving().to_vec(),
        sched
            .processes()
            .iter()
            .map(|p| PidWitness {
                state: p.state().clone(),
                cycles: p.machine().cycles(),
                stdout: p.kernel().stdout().to_vec(),
                stats: p.stats(),
                counter: p.kernel().policy_counter(),
            })
            .collect(),
    )
}

/// **Tentpole**: full observability attachment — metrics registries on
/// every kernel plus a sentinel sampling after every scheduler step — is
/// perturbation-free at every fleet size and under every verification
/// tier: shared clock, interleaving (hence its FNV digest), per-pid
/// cycles, kernel stats, stdout, states, and counters are all
/// bit-identical to a bare run. N = 1024 also exercises the batched trap
/// path under observation.
#[test]
fn sentinel_attachment_is_bit_identical_at_fleet_sizes_and_tiers() {
    for &n in &[2usize, 8, 64, 1024] {
        for (ti, &tier) in VerifyTier::ALL.iter().enumerate() {
            let policy = SchedPolicy::SeededRandom(0x5E17_7000 ^ n as u64 ^ (ti as u64) << 20);
            let batch = if n >= 64 { Some(16) } else { None };

            let mut bare = spawn_n_tier(n, policy, batch, tier, false);
            bare.run();
            let bare_witness = witness(&bare);
            let bare_agg = bare.aggregate_stats();
            drop(bare);

            // Retain every window (the default 256-window tail would
            // drop early windows on the long N=1024 runs, breaking the
            // partition identity below).
            let mut observed = spawn_n_tier(n, policy, batch, tier, true);
            let sentinel = Sentinel::drive(
                &mut observed,
                SentinelConfig::new(250_000).with_max_windows(usize::MAX),
            );
            let observed_witness = witness(&observed);

            let name = tier.name();
            assert_eq!(
                bare_witness.0, observed_witness.0,
                "n={n} {name}: sentinel moved the shared clock"
            );
            assert_eq!(
                bare_witness.1, observed_witness.1,
                "n={n} {name}: sentinel changed the interleaving"
            );
            for (pid0, (a, b)) in bare_witness.2.iter().zip(&observed_witness.2).enumerate() {
                assert_eq!(
                    a,
                    b,
                    "n={n} {name} pid {}: sentinel perturbed the run",
                    pid0 + 1
                );
            }

            // Telemetry exactness at every size and tier: the windows
            // partition the run's aggregate counters and tile the clock.
            let windows = sentinel.windows();
            assert!(!windows.is_empty(), "n={n} {name}: no windows closed");
            let sum =
                |f: fn(&asc::sentinel::WindowSample) -> u64| windows.iter().map(f).sum::<u64>();
            assert_eq!(sum(|w| w.syscalls), bare_agg.syscalls, "n={n} {name}");
            assert_eq!(sum(|w| w.verified), bare_agg.verified, "n={n} {name}");
            assert_eq!(
                sum(|w| w.verify_cycles),
                bare_agg.verify_cycles,
                "n={n} {name}"
            );
            assert_eq!(sum(|w| w.warm_hits), bare_agg.cache_hits, "n={n} {name}");
            let mut cursor = windows[0].start;
            for w in windows {
                assert_eq!(w.start, cursor, "n={n} {name}: window {} gap", w.index);
                cursor = w.end;
            }
            assert_eq!(cursor, observed_witness.0, "n={n} {name}: clock tiling");

            // A clean fleet keeps every count-style detector quiet at
            // every scale and tier: zero alerts, zero cache fallbacks,
            // zero scrubs are hard invariants. (The statistical
            // detectors — warm-hit-floor, verify-drift — are tuned for
            // the default deployment and legitimately read 0% warm
            // ratios under flow-only or fleet-scale cold phases; their
            // quiet-SLO behaviour is pinned by the sentinel crate's own
            // tests and the health golden instead.)
            let hard = [
                "alert-burst",
                "cache-fallback",
                "cache-scrub",
                "probe-contention",
            ];
            let unexpected: Vec<_> = sentinel
                .events()
                .iter()
                .filter(|e| hard.contains(&e.detector.as_str()))
                .collect();
            assert!(
                unexpected.is_empty(),
                "n={n} {name}: clean fleet fired {unexpected:?}"
            );
        }
    }
}
