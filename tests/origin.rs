//! Syscall-origin privilege, property-tested end to end.
//!
//! The installer records the exact pc set it rewrote in the binary's
//! authenticated `.ascsites` section; the kernel fail-stops any trap
//! from outside that set before the flow and MAC paths, under every
//! tier. These tests pin the two directions of that contract on the
//! benign workloads:
//!
//! * **sufficiency** — under every tier × cache mode, every trap a
//!   clean run produces originates from a registered pc, so origin
//!   enforcement never costs a benign program its life;
//! * **exactness** — the registry is precisely the rewritten-site set,
//!   not an over-approximation: every registered pc holds a real
//!   `SYSCALL` opcode, the count matches the installer's own precision
//!   accounting, and removing any *hit* pc from the registry turns the
//!   clean run into an attributed `unrewritten-site` kill (every entry
//!   is load-bearing).

use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions};
use asc::isa::Opcode;
use asc::kernel::{
    FileSystem, Kernel, KernelOptions, Personality, ReasonCode, SiteRegistry, VerifyTier,
};
use asc::object::Binary;
use asc::vm::{Machine, RunOutcome};
use asc::workloads::{
    build, flow_graph_of, measure_tier, measure_tier_cached, program, sites_of, ProgramSpec,
    RUN_BUDGET,
};
use asc_testkit::{check, Rng};

const PERSONALITY: Personality = Personality::Linux;
const WORKLOADS: [&str; 3] = ["bison", "calc", "tar"];

fn install(name: &str, key: &MacKey, program_id: u16) -> (&'static ProgramSpec, Binary, usize) {
    let spec = program(name).expect("workload is registered");
    let plain = build(spec, PERSONALITY).expect("workload builds");
    let installer = Installer::new(
        key.clone(),
        InstallerOptions::new(PERSONALITY).with_program_id(program_id),
    );
    let (auth, report) = installer.install(&plain, name).expect("workload installs");
    (spec, auth, report.precision.rewritten)
}

/// Runs `auth` under an explicit registry (instead of the one the
/// measurement helpers load from `.ascsites`), mirroring the enforcing
/// kernel configuration of the measurement path.
fn run_with_registry(
    spec: &ProgramSpec,
    auth: &Binary,
    key: &MacKey,
    tier: VerifyTier,
    cached: bool,
    registry: SiteRegistry,
) -> (RunOutcome, Kernel) {
    let mut fs = FileSystem::new();
    (spec.setup_fs)(&mut fs);
    let opts = KernelOptions::enforcing(PERSONALITY).with_tier(tier);
    let opts = if cached {
        opts.with_verify_cache()
    } else {
        opts
    };
    let mut kernel = Kernel::with_fs(opts, fs);
    kernel.set_stdin(spec.stdin.to_vec());
    if tier.checks_flow() {
        kernel.set_flow_graph(flow_graph_of(auth, key));
    }
    kernel.set_site_registry(registry);
    kernel.set_key(key.clone());
    kernel.set_brk(auth.highest_addr());
    let mut machine = Machine::load(auth, kernel).expect("workload fits in memory");
    let outcome = machine.run(RUN_BUDGET);
    (outcome, machine.into_handler())
}

/// Every benign trap comes from a registered site, under every tier and
/// both cache modes, for any install key / program id — and the
/// registry is exact: its size matches the installer's rewritten-site
/// count and every registered pc holds a `SYSCALL` opcode in the
/// installed text.
#[test]
fn benign_traps_all_originate_from_registered_sites() {
    check(0x0819_517E, 36, |rng: &mut Rng| {
        let name = *rng.pick(&WORKLOADS);
        let tier = *rng.pick(&VerifyTier::ALL);
        let cached = rng.chance(1, 2);
        let key = MacKey::from_seed(rng.next_u64());
        let program_id = rng.range_u32(1, 0xFFFF) as u16;
        let (spec, auth, rewritten) = install(name, &key, program_id);

        let registry = sites_of(&auth, &key);
        assert!(!registry.is_empty(), "{name}: no sites registered");
        // Exact, not merely sufficient: one registry entry per site the
        // installer rewrote, and each entry points at a real `SYSCALL`.
        assert_eq!(
            registry.len(),
            rewritten,
            "{name}: registry size diverges from the installer's count"
        );
        for pc in registry.pcs() {
            let section = auth
                .section_at(pc)
                .unwrap_or_else(|| panic!("{name}: registered pc {pc:#x} is unmapped"));
            let byte = section.data[(pc - section.addr) as usize];
            assert_eq!(
                byte,
                Opcode::Syscall as u8,
                "{name}: registered pc {pc:#x} does not hold a SYSCALL opcode"
            );
        }

        let report = if cached {
            measure_tier_cached(spec, &auth, PERSONALITY, key.clone(), tier)
        } else {
            measure_tier(spec, &auth, PERSONALITY, key.clone(), tier)
        };
        assert_eq!(
            report.outcome,
            RunOutcome::Exited(0),
            "{name} under {} (cached={cached}): alerts={:?}",
            tier.name(),
            report.kernel.alerts()
        );
        assert!(report.kernel.alerts().is_empty(), "{name}: spurious alerts");
        assert!(!report.kernel.trace().is_empty(), "{name}: no traps at all");
        for entry in report.kernel.trace() {
            assert!(
                registry.contains(entry.site),
                "{name} under {} (cached={cached}): trap for syscall {} came from \
                 unregistered pc {:#x}",
                tier.name(),
                entry.raw_nr,
                entry.site
            );
        }
    });
}

/// Every registered pc is load-bearing: deleting any pc the run
/// actually traps from flips the clean exit into a fail-stop
/// `unrewritten-site` kill at that pc — so the registry cannot shrink
/// (the benign program dies) any more than it can grow (the MAC fails).
#[test]
fn removing_a_hit_site_turns_the_clean_run_into_an_origin_kill() {
    check(0x0819_0B1A, 32, |rng: &mut Rng| {
        let name = *rng.pick(&WORKLOADS);
        let tier = *rng.pick(&VerifyTier::ALL);
        let cached = rng.chance(1, 2);
        let key = MacKey::from_seed(rng.next_u64());
        let (spec, auth, _) = install(name, &key, 0x0B1A);

        // A clean run's trace tells us which sites are actually hit.
        let full = sites_of(&auth, &key);
        let report = measure_tier(spec, &auth, PERSONALITY, key.clone(), tier);
        assert_eq!(report.outcome, RunOutcome::Exited(0), "{name}: clean run");
        let hit: Vec<u32> = {
            let mut pcs: Vec<u32> = report.kernel.trace().iter().map(|t| t.site).collect();
            pcs.sort_unstable();
            pcs.dedup();
            pcs
        };
        let victim = *rng.pick(&hit);
        let narrowed: SiteRegistry = full.pcs().filter(|&pc| pc != victim).collect();
        assert_eq!(narrowed.len(), full.len() - 1);

        let (outcome, kernel) = run_with_registry(spec, &auth, &key, tier, cached, narrowed);
        assert!(
            matches!(outcome, RunOutcome::Killed(_)),
            "{name} under {} minus site {victim:#x}: expected a kill, got {outcome:?}",
            tier.name()
        );
        let alert = kernel.alerts().last().expect("fail-stop kill alerts");
        assert_eq!(alert.reason(), ReasonCode::UnrewrittenSite, "{alert}");
        assert!(
            alert.to_string().contains(&format!("{victim:#x}")),
            "kill is attributed to the deregistered pc: {alert}"
        );
    });
}

/// The fail-closed floor: an *empty* registry (what the loader installs
/// when `.ascsites` is present but tampered) kills the very first trap
/// under every tier, before any side effect — stdout, trace, and the
/// filesystem stay untouched.
#[test]
fn empty_registry_kills_the_first_trap_before_any_side_effect() {
    for name in WORKLOADS {
        let key = MacKey::from_seed(0x0819_FA11);
        let (spec, auth, _) = install(name, &key, 0x0F11);
        for &tier in &VerifyTier::ALL {
            let pristine = {
                let mut fs = FileSystem::new();
                (spec.setup_fs)(&mut fs);
                fs.digest()
            };
            let (outcome, kernel) =
                run_with_registry(spec, &auth, &key, tier, false, SiteRegistry::new());
            assert!(
                matches!(outcome, RunOutcome::Killed(_)),
                "{name} under {}: empty registry must kill, got {outcome:?}",
                tier.name()
            );
            let alert = kernel.alerts().last().expect("kill alerts");
            assert_eq!(alert.reason(), ReasonCode::UnrewrittenSite, "{alert}");
            assert!(kernel.stdout().is_empty(), "{name}: output escaped");
            assert!(kernel.trace().is_empty(), "{name}: a call was dispatched");
            assert_eq!(kernel.fs().digest(), pristine, "{name}: fs mutated");
            assert_eq!(kernel.stats().verified, 0, "{name}: AES work was spent");
        }
    }
}
