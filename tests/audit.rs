//! Forensic flight-recorder properties: no-perturbation, exact ring
//! accounting, sampling soundness, and bundle replay determinism.
//!
//! The recorder is the always-on black box of the fail-stop story, so its
//! contract is absolute:
//!
//! * **no-perturbation** — attaching it changes *nothing* metered:
//!   cycles, per-pid kernel stats, stdout, states, and the interleaving
//!   FNV digest are bit-identical at N ∈ {2, 8, 64, 1024} under every
//!   verification tier;
//! * **exact accounting** — every sampled ring satisfies
//!   `retained + dropped == total events emitted`, across scheduler
//!   kills and batch windows, at any capacity;
//! * **sampling soundness** — unsampled pids cost nothing and their span
//!   totals are reconstructed exactly from [`KernelStats`];
//! * **replay determinism** — an on-kill bundle re-runs from its seeds to
//!   the same pid, violation, and kill cycle, bit-identically, and its
//!   JSON serialization is digest-protected against tampering.

use std::sync::OnceLock;

use asc::audit::{replay, AuditFault, Bundle, SoloScenario};
use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions};
use asc::kernel::{
    FaultAction, FileSystem, Kernel, KernelOptions, KernelStats, Personality, TrapFault, VerifyTier,
};
use asc::object::Binary;
use asc::sched::{Pid, ProcState, RecorderConfig, SchedConfig, SchedPolicy, Scheduler, SliceEnd};
use asc::trace::EventKind;
use asc::vm::Machine;
use asc::workloads::{build, flow_graph_of, program, ProgramSpec, RUN_BUDGET};
use asc_testkit::Rng;

const PERSONALITY: Personality = Personality::Linux;
const WORKLOADS: [&str; 3] = ["bison", "calc", "tar"];

fn key() -> MacKey {
    MacKey::from_seed(0x3117_0AC5)
}

struct Built {
    spec: &'static ProgramSpec,
    auth: Binary,
}

static FLEET: OnceLock<Vec<Built>> = OnceLock::new();

fn fleet() -> &'static [Built] {
    FLEET.get_or_init(|| {
        WORKLOADS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let spec = program(name).expect("workload is registered");
                let plain = build(spec, PERSONALITY).expect("workload builds");
                let installer = Installer::new(
                    key(),
                    InstallerOptions::new(PERSONALITY).with_program_id(0x0AB0 + i as u16),
                );
                let (auth, _) = installer.install(&plain, spec.name).expect("installs");
                Built { spec, auth }
            })
            .collect()
    })
}

fn machine_for_tier(spec: &ProgramSpec, auth: &Binary, tier: VerifyTier) -> Machine<Kernel> {
    let mut fs = FileSystem::new();
    (spec.setup_fs)(&mut fs);
    let opts = KernelOptions::enforcing(PERSONALITY)
        .with_verify_cache()
        .with_tier(tier);
    let mut kernel = Kernel::with_fs(opts, fs);
    kernel.set_key(key());
    if tier.checks_flow() {
        kernel.set_flow_graph(flow_graph_of(auth, &key()));
    }
    kernel.set_stdin(spec.stdin.to_vec());
    kernel.set_brk(auth.highest_addr());
    Machine::load(auth, kernel).expect("workload fits in guest memory")
}

fn spawn_n_tier(
    n: usize,
    policy: SchedPolicy,
    slice_instrs: u64,
    batch_depth: Option<usize>,
    tier: VerifyTier,
) -> Scheduler {
    let fleet = fleet();
    let mut sched = Scheduler::with_shared_cache(SchedConfig {
        policy,
        slice_instrs,
        budget_cycles: RUN_BUDGET,
        batch_depth,
    });
    for m in 0..n {
        let built = &fleet[m % fleet.len()];
        sched.spawn(
            built.spec.name,
            machine_for_tier(built.spec, &built.auth, tier),
        );
    }
    sched
}

/// Everything the recorder could possibly perturb, captured per run.
#[derive(PartialEq, Debug)]
struct PidWitness {
    state: ProcState,
    cycles: u64,
    stdout: Vec<u8>,
    stats: KernelStats,
    counter: u64,
}

fn witness(sched: &Scheduler) -> (u64, Vec<Pid>, Vec<PidWitness>) {
    (
        sched.clock(),
        sched.interleaving().to_vec(),
        sched
            .processes()
            .iter()
            .map(|p| PidWitness {
                state: p.state().clone(),
                cycles: p.machine().cycles(),
                stdout: p.kernel().stdout().to_vec(),
                stats: p.stats(),
                counter: p.kernel().policy_counter(),
            })
            .collect(),
    )
}

/// **Tentpole**: attaching the recorder is perturbation-free at every
/// fleet size and under every verification tier — shared clock,
/// interleaving (hence its FNV digest), per-pid cycles, kernel stats,
/// stdout, states, and counters are all bit-identical to a bare run.
/// N = 1024 also exercises the batched trap path under recording.
#[test]
fn recorder_attachment_is_bit_identical_at_fleet_sizes_and_tiers() {
    for &n in &[2usize, 8, 64, 1024] {
        for (ti, &tier) in VerifyTier::ALL.iter().enumerate() {
            let policy = SchedPolicy::SeededRandom(0xF1EE_7000 ^ n as u64 ^ (ti as u64) << 20);
            let batch = if n >= 64 { Some(16) } else { None };

            let mut bare = spawn_n_tier(n, policy, 2_000, batch, tier);
            bare.run();
            let bare_witness = witness(&bare);
            drop(bare);

            let mut recorded = spawn_n_tier(n, policy, 2_000, batch, tier);
            // Sample everything at small N; at fleet scale sample 1/8 so
            // the test also proves *partial* sampling perturbs nothing.
            let config = if n >= 64 {
                RecorderConfig {
                    ring_capacity: 32,
                    sample_num: 1,
                    sample_den: 8,
                    ..RecorderConfig::default()
                }
            } else {
                RecorderConfig::default()
            };
            recorded.attach_recorder(config);
            assert!(recorded.recording());
            recorded.run();
            let recorded_witness = witness(&recorded);
            let audit = recorded.take_audit().expect("recorder was attached");

            let name = tier.name();
            assert_eq!(
                bare_witness.0, recorded_witness.0,
                "n={n} {name}: recorder moved the shared clock"
            );
            assert_eq!(
                bare_witness.1, recorded_witness.1,
                "n={n} {name}: recorder changed the interleaving"
            );
            for (pid0, (a, b)) in bare_witness.2.iter().zip(&recorded_witness.2).enumerate() {
                assert_eq!(
                    a,
                    b,
                    "n={n} {name} pid {}: recorder perturbed the run",
                    pid0 + 1
                );
            }
            // The audit actually captured the fleet: every pid has a
            // record, and sampled pids with syscalls captured events.
            assert_eq!(audit.pids.len(), n, "n={n} {name}: audit covers every pid");
            for pa in &audit.pids {
                if pa.sampled && pa.stats.syscalls > 0 {
                    assert!(
                        !pa.events.is_empty() || pa.dropped > 0,
                        "n={n} {name} pid {}: sampled pid with traps recorded nothing",
                        pa.pid
                    );
                }
            }
        }
    }
}

/// **Satellite**: exact ring accounting under seeded schedules with
/// scheduler kills and batch windows. A giant-capacity twin ring (which
/// provably drops nothing) supplies the ground-truth event total; every
/// bounded ring must satisfy `retained + dropped == total`, and the
/// unsampled-pid reconstruction (`syscalls + verified` span events) must
/// match the twin's observed span events exactly.
#[test]
fn ring_accounting_is_exact_across_kills_and_batch_windows() {
    let mut rng = Rng::new(0x41C0_0071);
    for round in 0..6u64 {
        let n = [3usize, 6, 9][(round % 3) as usize];
        let batch = if round % 2 == 0 { Some(4) } else { None };
        let policy = SchedPolicy::SeededRandom(0xACC7_0000 ^ round);
        let kill_victim = (rng.range_u32(1, n as u32 + 1)) as Pid;
        let kill_after = rng.range_u32(5, 40);

        // Ground truth: capacity large enough to never drop.
        let mut full = spawn_n_tier(n, policy, 2_000, batch, VerifyTier::Mac);
        full.attach_recorder(RecorderConfig {
            ring_capacity: 1 << 20,
            ..RecorderConfig::default()
        });
        for _ in 0..kill_after {
            if full.step().is_none() {
                break;
            }
        }
        if full.process(kill_victim).state().is_runnable() {
            full.kill(kill_victim, "operator kill (accounting test)");
        }
        full.run();
        let full_audit = full.take_audit().expect("recorder attached");

        // Bounded ring over the *identical* schedule and kill sequence.
        let capacity = [4usize, 16, 64][(round % 3) as usize];
        let mut bounded = spawn_n_tier(n, policy, 2_000, batch, VerifyTier::Mac);
        bounded.attach_recorder(RecorderConfig {
            ring_capacity: capacity,
            ..RecorderConfig::default()
        });
        for _ in 0..kill_after {
            if bounded.step().is_none() {
                break;
            }
        }
        if bounded.process(kill_victim).state().is_runnable() {
            bounded.kill(kill_victim, "operator kill (accounting test)");
        }
        bounded.run();
        let bounded_audit = bounded.take_audit().expect("recorder attached");

        for pa in &full_audit.pids {
            assert_eq!(
                pa.dropped, 0,
                "round {round}: the ground-truth ring dropped"
            );
            let total = pa.events.len() as u64;
            let b = bounded_audit.pid(pa.pid).expect("same fleet");
            assert_eq!(
                b.events.len() as u64 + b.dropped,
                total,
                "round {round} pid {} capacity {capacity}: \
                 retained + dropped != total events",
                pa.pid
            );
            assert!(
                b.events.len() <= capacity,
                "round {round} pid {}: ring exceeded its capacity",
                pa.pid
            );
            // Sampling soundness: the span totals reconstructed from
            // KernelStats alone equal the observed span-level events.
            let span_observed = pa
                .events
                .iter()
                .filter(|(_, e)| {
                    matches!(
                        e.kind,
                        EventKind::TrapEnter { .. } | EventKind::TrapExit { .. }
                    )
                })
                .count() as u64;
            assert_eq!(
                pa.span_events(),
                span_observed,
                "round {round} pid {}: KernelStats reconstruction drifted",
                pa.pid
            );
        }
        // The external kill is marked (when the victim was still alive).
        if matches!(bounded.process(kill_victim).state(), ProcState::Killed(_)) {
            assert!(
                bounded_audit.kills.iter().any(|k| k.pid == kill_victim),
                "round {round}: external kill missing from the audit log"
            );
        }
        // Batch windows surface on slice windows when batching was on.
        if batch.is_some() {
            assert!(
                bounded_audit.windows.iter().any(|w| w.batched),
                "round {round}: no slice recorded a batch window"
            );
        }
        assert!(
            bounded_audit
                .windows
                .iter()
                .any(|w| w.end != SliceEnd::Preempted),
            "round {round}: no slice recorded a terminal end"
        );
    }
}

/// **Replay determinism**: a solo kill bundle re-runs from its seeds to
/// the identical pid, violation, and kill cycle; its JSON form
/// round-trips schema- and digest-verified; and a tampered byte is
/// rejected by the digest check.
#[test]
fn solo_bundles_replay_bit_identically_and_reject_tampering() {
    let scenario = SoloScenario {
        workload: "calc".into(),
        personality: PERSONALITY,
        tier: VerifyTier::Mac,
        weakened: false,
        program_id: 0x0AB1,
        key_seed: 0x3117_0AC5,
        fault: Some(AuditFault::Trap(TrapFault {
            at_trap: 4,
            action: FaultAction::SkewCounter { delta: 2 },
        })),
    };
    let run = scenario.run();
    assert!(
        run.outcome.is_killed(),
        "the armed counter skew must kill: {:?}",
        run.outcome
    );
    let bundle = Bundle::from_solo(scenario, &run).expect("kill yields a bundle");

    // Replay from scratch (rebuild + reinstall + rerun).
    let verdict = replay(&bundle);
    assert!(verdict.matched, "replay diverged: {}", verdict.detail);

    // JSON round-trip preserves the digest and replays identically.
    let json = bundle.to_json();
    let parsed = Bundle::from_json(&json).expect("round-trip verifies");
    assert_eq!(parsed.digest(), bundle.digest());
    let verdict = replay(&parsed);
    assert!(
        verdict.matched,
        "round-tripped replay diverged: {}",
        verdict.detail
    );

    // Tampering with any recorded observable breaks the digest.
    let tampered = json.replacen("\"policy_counter\"", "\"policy_c0unter\"", 1);
    assert_ne!(tampered, json, "tamper target present");
    assert!(
        Bundle::from_json(&tampered).is_err(),
        "a tampered bundle must fail digest verification"
    );
}

/// **Fleet replay**: a kill inside a seeded, batched fleet produces a
/// bundle whose replay re-runs the interleaving to the same kill — same
/// pid, violation, kill cycle, slice index, and interleaving-prefix FNV.
#[test]
fn fleet_bundles_replay_to_the_same_kill() {
    use asc::audit::FleetScenario;
    let scenario = FleetScenario {
        procs: vec!["calc".into(), "tar".into(), "bison".into(), "calc".into()],
        personality: PERSONALITY,
        tier: VerifyTier::Mac,
        key_seed: 0x3117_0AC5,
        program_id_base: 0x0AC0,
        sched_seed: 0xF1E7_0001,
        slice_instrs: 2_000,
        budget_cycles: RUN_BUDGET,
        batch_depth: Some(4),
        fault: Some((
            1,
            TrapFault {
                at_trap: 6,
                action: FaultAction::SkewCounter { delta: 1 },
            },
        )),
    };
    let mut sched = scenario.run(Some(RecorderConfig::default()));
    let audit = sched.take_audit().expect("recorder attached");
    assert!(
        matches!(sched.process(1).state(), ProcState::Killed(_)),
        "the armed fault must kill pid 1: {:?}",
        sched.process(1).state()
    );
    let bundle = Bundle::from_fleet(&scenario, &sched, &audit, 1).expect("kill yields a bundle");
    let verdict = replay(&bundle);
    assert!(verdict.matched, "fleet replay diverged: {}", verdict.detail);

    // Round-trip through JSON and replay again.
    let parsed = Bundle::from_json(&bundle.to_json()).expect("round-trip verifies");
    let verdict = replay(&parsed);
    assert!(
        verdict.matched,
        "round-tripped fleet replay diverged: {}",
        verdict.detail
    );
}

/// **Sentinel integration**: a fleet kill bundle embeds the last closed
/// health window — the operator sees what the sentinel saw just before
/// the kill next to the victim's forensics — and the embedded payload
/// survives the digest-verified JSON round-trip without disturbing
/// replay (the window is evidence, not replayed state).
#[test]
fn fleet_bundles_embed_the_last_health_window() {
    use asc::audit::FleetScenario;
    use asc::sentinel::{Sentinel, SentinelConfig};
    let scenario = FleetScenario {
        procs: vec!["calc".into(), "tar".into(), "bison".into(), "calc".into()],
        personality: PERSONALITY,
        tier: VerifyTier::Mac,
        key_seed: 0x3117_0AC5,
        program_id_base: 0x0AC0,
        sched_seed: 0xF1E7_0001,
        slice_instrs: 2_000,
        budget_cycles: RUN_BUDGET,
        batch_depth: Some(4),
        fault: Some((
            1,
            TrapFault {
                at_trap: 6,
                action: FaultAction::SkewCounter { delta: 1 },
            },
        )),
    };
    let mut sched = scenario.build();
    sched.attach_recorder(RecorderConfig::default());
    let mut sentinel = Sentinel::attach(&sched, SentinelConfig::new(50_000));
    while sched.step().is_some() {
        sentinel.observe(&sched);
    }
    sentinel.finish(&sched);
    let audit = sched.take_audit().expect("recorder attached");
    assert!(
        matches!(sched.process(1).state(), ProcState::Killed(_)),
        "the armed fault must kill pid 1: {:?}",
        sched.process(1).state()
    );

    // The sentinel saw the violation: some window records the alert.
    assert!(
        sentinel.windows().iter().any(|w| w.alerts_total > 0),
        "no health window recorded the kill's alert"
    );
    let last = sentinel
        .windows()
        .last()
        .expect("the run closed at least one window")
        .clone();

    let mut bundle =
        Bundle::from_fleet(&scenario, &sched, &audit, 1).expect("kill yields a bundle");
    assert!(
        bundle.health_window().is_none(),
        "no window before embedding"
    );
    bundle.embed_health_window(&last);
    assert_eq!(
        bundle.health_window(),
        Some(&last.to_value()),
        "embedded window reads back verbatim"
    );
    // Embedding is idempotent: re-embedding replaces, not duplicates.
    bundle.embed_health_window(&last);
    let json = bundle.to_json();
    assert_eq!(
        json.matches("\"health_window\"").count(),
        1,
        "re-embedding must replace the previous window"
    );

    // Round-trip: the digest covers the embedded window and the payload
    // survives parsing; replay still reproduces the kill.
    let parsed = Bundle::from_json(&json).expect("round-trip verifies");
    assert_eq!(parsed.health_window(), Some(&last.to_value()));
    let verdict = replay(&parsed);
    assert!(
        verdict.matched,
        "replay with an embedded window diverged: {}",
        verdict.detail
    );

    // Tampering with the embedded telemetry breaks the digest like any
    // other recorded observable.
    let tampered = json.replacen("\"alerts_total\"", "\"alerts_t0tal\"", 1);
    assert_ne!(tampered, json, "tamper target present");
    assert!(
        Bundle::from_json(&tampered).is_err(),
        "a tampered health window must fail digest verification"
    );
}
