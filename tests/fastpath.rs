//! End-to-end test of the verified-call fast path: with the kernel's
//! MAC cache enabled, a repeated identical authenticated call must run at
//! least 50% fewer AES block operations warm than cold, while producing
//! the same program behaviour as the cache-less kernel.

use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions};
use asc::kernel::{Kernel, KernelOptions, KernelStats, Personality};
use asc::vm::{Machine, RunOutcome};

const PERSONALITY: Personality = Personality::Linux;

/// Issues the same `write` call eight times from one call site.
const SOURCE: &str = r#"
fn main() {
    var i = 0;
    while (i < 8) {
        write(1, "tick\n", 5);
        i = i + 1;
    }
    return 0;
}
"#;

fn run(use_cache: bool) -> (RunOutcome, Vec<u8>, KernelStats) {
    let key = MacKey::from_seed(0xFA57);
    let plain = asc::workloads::build_source(SOURCE, PERSONALITY).expect("builds");
    let installer = Installer::new(key.clone(), InstallerOptions::new(PERSONALITY));
    let (auth, _) = installer.install(&plain, "ticker").expect("installs");
    let opts = KernelOptions::enforcing(PERSONALITY);
    let opts = if use_cache {
        opts.with_verify_cache()
    } else {
        opts
    };
    let mut kernel = Kernel::new(opts);
    kernel.set_key(key);
    kernel.set_brk(auth.highest_addr());
    let mut m = Machine::load(&auth, kernel).expect("loads");
    let outcome = m.run(10_000_000);
    let kernel = m.into_handler();
    (outcome, kernel.stdout().to_vec(), *kernel.stats())
}

#[test]
fn warm_path_halves_aes_blocks_end_to_end() {
    let (outcome, stdout, stats) = run(true);
    assert_eq!(outcome, RunOutcome::Exited(0));
    assert_eq!(stdout, b"tick\n".repeat(8));
    assert!(stats.cache_hits >= 4, "expected a warm cache: {stats:?}");
    let cold_calls = stats.cold_verified();
    assert!(cold_calls >= 1, "{stats:?}");
    let cold_blocks_per_call = (stats.verify_aes_blocks - stats.warm_aes_blocks) / cold_calls;
    let warm_blocks_per_call = stats.warm_aes_blocks / stats.cache_hits;
    assert!(
        warm_blocks_per_call * 2 <= cold_blocks_per_call,
        "warm {warm_blocks_per_call} blocks/call vs cold {cold_blocks_per_call}"
    );
    // Cycle accounting follows the block savings.
    assert!(
        stats.warm_verify_cycles_per_call() * 2 <= stats.cold_verify_cycles_per_call(),
        "{stats:?}"
    );
}

#[test]
fn cache_does_not_change_behaviour() {
    let (cold_outcome, cold_stdout, cold_stats) = run(false);
    let (warm_outcome, warm_stdout, warm_stats) = run(true);
    assert_eq!(cold_outcome, warm_outcome);
    assert_eq!(cold_stdout, warm_stdout);
    assert_eq!(cold_stats.syscalls, warm_stats.syscalls);
    assert_eq!(cold_stats.verified, warm_stats.verified);
    assert_eq!(cold_stats.cache_hits, 0);
    // The warm kernel did strictly less cryptographic work.
    assert!(warm_stats.verify_aes_blocks < cold_stats.verify_aes_blocks);
    assert!(warm_stats.verify_cycles < cold_stats.verify_cycles);
}
