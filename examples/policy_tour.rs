//! Policy tour: generate the static-analysis policy for the bison
//! workload on both OS personalities and print it the way §3.1 renders
//! policies ("Permit open from location ... Parameter 0 equals ...").
//!
//! ```sh
//! cargo run --example policy_tour
//! ```

use asc::core::ArgPolicy;
use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions};
use asc::kernel::Personality;

fn render(policy: &asc::core::SyscallPolicy, personality: Personality) -> String {
    let mut out = format!(
        "Permit {} from location {:#x} in basic block {}\n",
        personality.name_of(policy.syscall_nr),
        policy.call_site,
        policy.block_id
    );
    for (i, arg) in policy.args.iter().enumerate() {
        match arg {
            ArgPolicy::Any => {}
            ArgPolicy::Immediate(v) => {
                out.push_str(&format!("    Parameter {i} equals {v}\n"));
            }
            ArgPolicy::ImmediateAddr(v) => {
                out.push_str(&format!("    Parameter {i} equals address {v:#x}\n"));
            }
            ArgPolicy::StringLit(s) => {
                out.push_str(&format!(
                    "    Parameter {i} equals \"{}\"\n",
                    String::from_utf8_lossy(s)
                ));
            }
            ArgPolicy::Pattern(p) => {
                out.push_str(&format!("    Parameter {i} matches pattern \"{p}\"\n"));
            }
            ArgPolicy::Capability => {
                out.push_str(&format!("    Parameter {i} must be an active descriptor\n"));
            }
        }
    }
    if let Some(preds) = &policy.predecessors {
        let list: Vec<String> = preds.iter().map(|p| p.to_string()).collect();
        out.push_str(&format!("    Possible predecessors {}\n", list.join(", ")));
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = asc::workloads::program("bison").expect("bison is registered");
    for personality in [Personality::Linux, Personality::OpenBsd] {
        let binary = asc::workloads::build(spec, personality)?;
        let installer = Installer::new(MacKey::from_seed(2005), InstallerOptions::new(personality));
        let (policy, stats, warnings) = installer.generate_policy(&binary, "bison")?;
        println!("==== bison on {} ====", personality.name());
        println!(
            "{} call sites, {} distinct syscalls, {}/{} arguments authenticated\n",
            stats.sites,
            policy.distinct_syscalls().len(),
            stats.auth,
            stats.args
        );
        // Show the most constrained policies (those with string/immediate
        // arguments), like the paper's §3.1 example.
        let mut shown = 0;
        for p in policy.iter() {
            if p.args.iter().any(|a| matches!(a, ArgPolicy::StringLit(_))) && shown < 3 {
                println!("{}", render(p, personality));
                shown += 1;
            }
        }
        for w in &warnings {
            println!("administrator warning: {w}");
        }
        println!();
    }
    Ok(())
}
