//! Attack demo: the three §4.1 code-injection experiments against the
//! vulnerable `victim` program (which reads a file name into a 64-byte
//! stack buffer and execs `/bin/ls` on it), plus the §5.5 Frankenstein
//! attack and its countermeasure.
//!
//! ```sh
//! cargo run --example attack_demo
//! ```

use asc::attacks::{frankenstein::run_frankenstein, AttackLab, AttackOutcome};
use asc::crypto::MacKey;

fn describe(outcome: &AttackOutcome) -> String {
    match outcome {
        AttackOutcome::Succeeded(s) => format!("ATTACK SUCCEEDED — {s}"),
        AttackOutcome::Blocked(s) => format!("attack blocked — {s}"),
        AttackOutcome::Failed(s) => format!("attack fizzled — {s}"),
    }
}

fn main() {
    let key = MacKey::from_seed(0x5AFE);
    let lab = AttackLab::new(key.clone());

    println!("== 1. Classic shellcode injection (stack smash -> execve(\"/bin/sh\")) ==");
    println!("unprotected: {}", describe(&lab.shellcode_attack(false)));
    println!("installed:   {}", describe(&lab.shellcode_attack(true)));
    println!("The injected call carries no policy or MAC; the kernel kills the process.\n");

    println!("== 2. Mimicry: reuse an authenticated gadget stolen from another app ==");
    println!("installed:   {}", describe(&lab.mimicry_attack()));
    println!("The stolen gadget's MAC covers its original call site; running it from");
    println!("the stack changes the site and the MAC check fails.\n");

    println!("== 3. Non-control-data: overwrite \"/bin/ls\" with \"/bin/sh\" in memory ==");
    println!(
        "unprotected: {}",
        describe(&lab.non_control_data_attack(false))
    );
    println!(
        "installed:   {}",
        describe(&lab.non_control_data_attack(true))
    );
    println!("The argument is an authenticated string; its content MAC no longer matches.\n");

    println!("== 4. Frankenstein: a new program stitched from two apps' gadgets ==");
    println!(
        "plain block ids:  {}",
        describe(&run_frankenstein(&key, false))
    );
    println!(
        "unique block ids: {}",
        describe(&run_frankenstein(&key, true))
    );
    println!("With per-program block identifiers, the second stolen call's predecessor");
    println!("check can never match a block from a different program.");
}
