//! Extensions tour (§5): argument patterns with proof hints, metapolicies
//! and policy templates, capability (file-descriptor) tracking, and
//! file-name normalisation.
//!
//! ```sh
//! cargo run --example extensions
//! ```

use asc::core::{match_pattern, produce_hint, ArgPolicy, Pattern};
use asc::crypto::{AuthDict, CapabilitySet, MacKey};
use asc::installer::{Installer, InstallerOptions, Metapolicy};
use asc::kernel::{FileSystem, Kernel, KernelOptions, Personality, SyscallId};
use asc::vm::Machine;

fn patterns() {
    println!("== §5.1 argument patterns with proof hints ==");
    // The paper's worked example: pattern "/tmp/{foo,bar}*baz" with
    // argument "/tmp/foofoobaz" yields the hint (0, 3); the kernel then
    // verifies the match in one linear scan.
    let pattern = Pattern::parse("/tmp/{foo,bar}*baz").expect("valid pattern");
    let arg = b"/tmp/foofoobaz";
    let hint = produce_hint(&pattern, arg).expect("matches");
    println!(
        "pattern /tmp/{{foo,bar}}*baz, arg {:?}",
        String::from_utf8_lossy(arg)
    );
    println!("application-produced hint: {hint:?} (paper: (0, 3))");
    println!(
        "kernel linear verify: {}",
        pattern.match_with_hint(arg, &hint)
    );
    println!(
        "wrong hint rejected: {}",
        !pattern.match_with_hint(arg, &[1, 3])
    );
    println!(
        "non-matching argument rejected: {}\n",
        !match_pattern(&pattern, b"/etc/passwd")
    );
}

fn metapolicies() -> Result<(), Box<dyn std::error::Error>> {
    println!("== §5.2 metapolicies and policy templates ==");
    // Require open's path argument (arg 0) to be constrained. A program
    // that opens a dynamically computed name cannot satisfy this through
    // static analysis, so the installer emits a template for the
    // administrator.
    let source = r#"
        fn main() {
            var name[16];
            name[0] = '/'; name[1] = 't'; name[2] = 'm'; name[3] = 'p';
            name[4] = '/'; name[5] = 'x'; name[6] = 0;
            let fd = open(name, 0x241, 420);
            close(fd);
            return 0;
        }
    "#;
    let binary = asc::workloads::build_source(source, Personality::Linux)?;
    let metapolicy = Metapolicy::new().require(Some(SyscallId::Open), 0b001);
    let installer = Installer::new(
        MacKey::from_seed(5),
        InstallerOptions::new(Personality::Linux).with_metapolicy(metapolicy),
    );
    let (_, report) = installer.install(&binary, "tmpwriter")?;
    for t in &report.templates {
        println!(
            "policy template: `{}` at {:#x} needs hand-specified argument(s) {:?}",
            t.syscall,
            t.call_site,
            t.holes.iter().map(|h| h.arg).collect::<Vec<_>>()
        );
    }
    // The administrator fills the hole with a pattern and reinstalls.
    let filled = Metapolicy::new()
        .require(Some(SyscallId::Open), 0b001)
        .fill("open", 0, ArgPolicy::Pattern("/tmp/*".into()));
    let installer = Installer::new(
        MacKey::from_seed(5),
        InstallerOptions::new(Personality::Linux).with_metapolicy(filled),
    );
    let (auth, report) = installer.install(&binary, "tmpwriter")?;
    println!(
        "after the administrator's fill: {} templates left",
        report.templates.len()
    );
    // The installer generated runtime hint-producing code for the
    // `/tmp/*` pattern; the program now runs enforced.
    let mut kernel = Kernel::new(KernelOptions::enforcing(Personality::Linux));
    kernel.set_key(MacKey::from_seed(5));
    kernel.set_brk(auth.highest_addr());
    let mut machine = Machine::load(&auth, kernel)?;
    println!(
        "enforced run with the pattern policy: {:?}\n",
        machine.run(10_000_000)
    );
    Ok(())
}

fn capability_tracking() -> Result<(), Box<dyn std::error::Error>> {
    println!("== §5.3 capability (file descriptor) tracking ==");
    // Library level: the authenticated dictionary keeps the active-fd set
    // in untrusted memory with a kernel-held counter nonce.
    let key = MacKey::from_seed(9);
    let mut dict = AuthDict::new();
    let mut set = CapabilitySet::new();
    set.insert(4);
    let mac = dict.update(&key, &set);
    println!(
        "fd 4 granted; dictionary verifies: {}",
        dict.verify(&key, &set, &mac)
    );
    let mut forged = set.clone();
    forged.insert(7);
    println!(
        "forged fd 7 detected: {}",
        !dict.verify(&key, &forged, &mac)
    );

    // System level: install with capability tracking; read()'s fd argument
    // must be a descriptor actually returned by open().
    let source = r#"
        fn main() {
            let fd = open("/etc/motd", 0, 0);
            var buf[32];
            let n = read(fd, buf, 32);
            write(1, buf, n);
            close(fd);
            return 0;
        }
    "#;
    let binary = asc::workloads::build_source(source, Personality::Linux)?;
    let key = MacKey::from_seed(10);
    let installer = Installer::new(
        key.clone(),
        InstallerOptions::new(Personality::Linux).with_capability_tracking(),
    );
    let (auth, report) = installer.install(&binary, "captest")?;
    let read_policy = report
        .policy
        .iter()
        .find(|p| p.syscall_nr == 3)
        .expect("read policy");
    println!("read() fd argument policy: {:?}", read_policy.args[0]);
    let mut kernel = Kernel::new(KernelOptions {
        capability_tracking: true,
        ..KernelOptions::enforcing(Personality::Linux)
    });
    kernel.set_key(key);
    kernel.set_brk(auth.highest_addr());
    let mut machine = Machine::load(&auth, kernel)?;
    println!(
        "enforced run with fd tracking: {:?}\n",
        machine.run(10_000_000)
    );
    Ok(())
}

fn normalization() {
    println!("== §5.4 file-name normalisation ==");
    // The TOCTOU setup from the paper: /tmp/foo is a symlink to
    // /etc/passwd. A policy that compares normalised names sees the truth.
    let mut fs = FileSystem::new();
    fs.symlink("/etc/passwd", "/tmp/foo", "/")
        .expect("fresh tree");
    println!(
        "open(\"/tmp/foo\") normalises to {:?}",
        fs.normalize("/tmp/foo", "/").expect("resolves")
    );
    println!(
        "relative paths too: {:?} -> {:?}",
        "../tmp/./foo",
        fs.normalize("../tmp/./foo", "/home").expect("resolves")
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    patterns();
    metapolicies()?;
    capability_tracking()?;
    normalization();
    Ok(())
}
