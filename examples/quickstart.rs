//! Quickstart: write a tiny guest program, install it with authenticated
//! system calls, run it under the enforcing kernel, and watch tampering
//! get caught.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions};
use asc::kernel::{Kernel, KernelOptions, Personality};
use asc::vm::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A guest program in the mini language: it greets and exits.
    let source = r#"
        fn main() {
            let fd = open("/etc/motd", 0, 0);
            var buf[64];
            let n = read(fd, buf, 64);
            write(1, buf, n);
            close(fd);
            return 0;
        }
    "#;
    let binary = asc::workloads::build_source(source, Personality::Linux)?;
    println!(
        "built relocatable binary: {} sections, {} relocations",
        binary.sections().len(),
        binary.relocations().len()
    );

    // 2. The security administrator installs it: static analysis derives a
    //    policy per syscall and the binary is rewritten with authenticated
    //    calls. The key is shared only with the kernel.
    let key = MacKey::from_seed(2005);
    let installer = Installer::new(key.clone(), InstallerOptions::new(Personality::Linux));
    let (authenticated, report) = installer.install(&binary, "quickstart")?;
    println!(
        "\ninstalled: {} syscall sites, {} distinct syscalls",
        report.policy.sites(),
        report.stats.calls
    );
    for policy in report.policy.iter().take(3) {
        println!(
            "  policy @ {:#x}: syscall {} block {} args {:?}",
            policy.call_site,
            policy.syscall_nr,
            policy.block_id,
            &policy.args[..3]
        );
    }

    // 3. Run it under the enforcing kernel.
    let mut kernel = Kernel::new(KernelOptions::enforcing(Personality::Linux));
    kernel.set_key(key.clone());
    kernel.set_brk(authenticated.highest_addr());
    let mut machine = Machine::load(&authenticated, kernel)?;
    let outcome = machine.run(10_000_000);
    println!("\nenforced run: {outcome:?}");
    println!(
        "stdout: {:?}",
        String::from_utf8_lossy(machine.handler().stdout())
    );
    println!("verified syscalls: {}", machine.handler().stats().verified);

    // 4. Tamper with the binary: flip one byte of an authenticated string
    //    in the .asc section and run again — fail-stop.
    let mut tampered = authenticated.clone();
    let asc_idx = tampered
        .section_index(".asc")
        .expect("installed binaries have .asc");
    let sec = &mut tampered.sections_mut()[asc_idx as usize];
    let off = sec.data.len() / 2;
    sec.data[off] ^= 0xff;
    let mut kernel = Kernel::new(KernelOptions::enforcing(Personality::Linux));
    kernel.set_key(key);
    kernel.set_brk(tampered.highest_addr());
    let mut machine = Machine::load(&tampered, kernel)?;
    let outcome = machine.run(10_000_000);
    println!("\ntampered run: {outcome:?}");
    for alert in machine.handler().alerts() {
        println!("administrator alert: {alert}");
    }
    Ok(())
}
