//! # asc — Authenticated System Calls
//!
//! A full reproduction of *"System Call Monitoring Using Authenticated
//! System Calls"* (Rajagopalan, Hiltunen, Jim, Schlichting; DSN 2005 /
//! TDSC 2006) as a Rust workspace. This facade crate re-exports every
//! component; see the individual crates for details and `DESIGN.md` for the
//! system inventory.
//!
//! * [`crypto`] — AES-128, CMAC/OMAC1, authenticated strings, the online
//!   memory checker, authenticated dictionaries.
//! * [`isa`] — the SVM32 instruction set the simulated programs run on.
//! * [`object`] — the relocatable SOF binary format (the ELF analogue).
//! * [`asm`] — the assembler.
//! * [`lang`] — a small C-like language compiled to SVM32 assembly.
//! * [`analysis`] — the PLTO-analogue static analyses (CFG, call graph,
//!   stub inlining, reaching definitions, syscall graph).
//! * [`core`] — the paper's contribution: policies, descriptors, encoded
//!   policies/calls, and verification logic.
//! * [`installer`] — the trusted installer (policy generation + rewriting).
//! * [`kernel`] — the simulated kernel with ASC checking in its trap
//!   handler.
//! * [`vm`] — the SVM32 interpreter with cycle accounting.
//! * [`monitors`] — baseline monitors (Systrace-like trained user-space
//!   monitor; in-kernel table monitor).
//! * [`sched`] — the deterministic multi-process scheduler (time-slicing
//!   N machines on the shared virtual cycle clock), with the always-on
//!   forensic flight recorder.
//! * [`audit`] — on-kill forensic bundles and deterministic
//!   replay-to-kill.
//! * [`metrics`] — dimensional counters/gauges/histograms with snapshot
//!   delta/merge algebra (observability, never cost-model input).
//! * [`sentinel`] — continuous fleet-health monitoring: windowed
//!   telemetry, anomaly detectors, health reports.
//! * [`faults`] — seeded fault-injection campaigns, including the
//!   detection-latency campaign the sentinel is measured by.
//! * [`attacks`] — the attack harness (shellcode, mimicry, non-control-data,
//!   Frankenstein).
//! * [`workloads`] — guest programs and benchmark suites.
//!
//! # Example: the whole pipeline in ten lines
//!
//! ```
//! use asc::crypto::MacKey;
//! use asc::installer::{Installer, InstallerOptions};
//! use asc::kernel::{Kernel, KernelOptions, Personality};
//! use asc::vm::Machine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let binary = asc::workloads::build_source(
//!     r#"fn main() { write(1, "hi\n", 3); return 0; }"#,
//!     Personality::Linux,
//! )?;
//! let key = MacKey::from_seed(2005);
//! let installer = Installer::new(key.clone(), InstallerOptions::new(Personality::Linux));
//! let (authenticated, _report) = installer.install(&binary, "hi")?;
//! let mut kernel = Kernel::new(KernelOptions::enforcing(Personality::Linux));
//! kernel.set_key(key);
//! kernel.set_brk(authenticated.highest_addr());
//! let mut machine = Machine::load(&authenticated, kernel)?;
//! assert!(machine.run(10_000_000).is_success());
//! assert_eq!(machine.handler().stdout(), b"hi\n");
//! # Ok(()) }
//! ```

pub use asc_analysis as analysis;
pub use asc_asm as asm;
pub use asc_attacks as attacks;
pub use asc_audit as audit;
pub use asc_core as core;
pub use asc_crypto as crypto;
pub use asc_faults as faults;
pub use asc_installer as installer;
pub use asc_isa as isa;
pub use asc_kernel as kernel;
pub use asc_lang as lang;
pub use asc_metrics as metrics;
pub use asc_monitors as monitors;
pub use asc_object as object;
pub use asc_sched as sched;
pub use asc_sentinel as sentinel;
pub use asc_trace as trace;
pub use asc_vm as vm;
pub use asc_workloads as workloads;
