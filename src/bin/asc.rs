//! The `asc` command-line tool: compile guest programs, generate
//! policies, install authenticated system calls, inspect, and run
//! binaries on the simulated machine.
//!
//! ```sh
//! asc compile prog.scl -o prog.sof
//! asc policy prog.sof [--personality openbsd] [--json]
//! asc install prog.sof -o prog.asc.sof --key-seed 2005
//! asc disasm prog.asc.sof
//! asc run prog.asc.sof --enforce --key-seed 2005 [--stdin input.txt]
//! ```

use std::process::ExitCode;

use asc::crypto::MacKey;
use asc::installer::{Installer, InstallerOptions};
use asc::kernel::{Kernel, KernelOptions, Personality};
use asc::object::Binary;
use asc::vm::Machine;

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = match name {
                    // Flags that take a value.
                    "key-seed" | "personality" | "stdin" | "program-id" | "budget" => {
                        it.next().cloned()
                    }
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else if a == "-o" {
                flags.push(("output".to_string(), it.next().cloned()));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn personality(&self) -> Personality {
        match self.value("personality") {
            Some("openbsd") => Personality::OpenBsd,
            _ => Personality::Linux,
        }
    }

    fn key(&self) -> MacKey {
        let seed = self
            .value("key-seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(2005u64);
        MacKey::from_seed(seed)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  asc compile <prog.scl> -o <out.sof> [--personality linux|openbsd]
  asc policy  <prog.sof> [--personality linux|openbsd] [--json]
  asc install <prog.sof> -o <out.sof> [--key-seed N] [--program-id N]
              [--no-control-flow] [--capability-tracking]
  asc disasm  <prog.sof>
  asc run     <prog.sof> [--enforce] [--key-seed N] [--stdin FILE]
              [--personality linux|openbsd] [--budget CYCLES]"
    );
    ExitCode::from(2)
}

fn load_binary(path: &str) -> Result<Binary, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    Binary::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        return usage();
    };
    let args = Args::parse(&raw[1..]);
    match run_command(&cmd, &args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("asc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_command(cmd: &str, args: &Args) -> Result<ExitCode, String> {
    match cmd {
        "compile" => {
            let src_path = args.positional.first().ok_or("missing source file")?;
            let out_path = args.value("output").ok_or("missing -o OUTPUT")?;
            let source =
                std::fs::read_to_string(src_path).map_err(|e| format!("{src_path}: {e}"))?;
            let binary = asc::workloads::build_source(&source, args.personality())
                .map_err(|e| e.to_string())?;
            std::fs::write(out_path, binary.to_bytes()).map_err(|e| e.to_string())?;
            println!(
                "compiled {src_path}: {} sections, {} relocations -> {out_path}",
                binary.sections().len(),
                binary.relocations().len()
            );
            Ok(ExitCode::SUCCESS)
        }
        "policy" => {
            let in_path = args.positional.first().ok_or("missing input binary")?;
            let binary = load_binary(in_path)?;
            let installer = Installer::new(args.key(), InstallerOptions::new(args.personality()));
            let (policy, stats, warnings) = installer
                .generate_policy(&binary, in_path)
                .map_err(|e| e.to_string())?;
            if args.flag("json") {
                println!("{}", policy.to_json());
            } else {
                println!(
                    "{} call sites, {} distinct syscalls, {}/{} arguments authenticated",
                    stats.sites,
                    policy.distinct_syscalls().len(),
                    stats.auth,
                    stats.args
                );
                for p in policy.iter() {
                    println!(
                        "  {:#08x}: {} block {} args {:?} preds {:?}",
                        p.call_site,
                        args.personality().name_of(p.syscall_nr),
                        p.block_id,
                        &p.args[..3],
                        p.predecessors
                    );
                }
                for w in warnings {
                    println!("warning: {w}");
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "install" => {
            let in_path = args.positional.first().ok_or("missing input binary")?;
            let out_path = args.value("output").ok_or("missing -o OUTPUT")?;
            let binary = load_binary(in_path)?;
            let mut opts = InstallerOptions::new(args.personality());
            if args.flag("no-control-flow") {
                opts = opts.without_control_flow();
            }
            if args.flag("capability-tracking") {
                opts = opts.with_capability_tracking();
            }
            if let Some(pid) = args.value("program-id").and_then(|s| s.parse().ok()) {
                opts = opts.with_program_id(pid);
            }
            let installer = Installer::new(args.key(), opts);
            let (auth, report) = installer
                .install(&binary, in_path)
                .map_err(|e| e.to_string())?;
            std::fs::write(out_path, auth.to_bytes()).map_err(|e| e.to_string())?;
            println!(
                "installed {in_path}: {} sites, {} distinct syscalls, {} warnings -> {out_path}",
                report.policy.sites(),
                report.stats.calls,
                report.warnings.len()
            );
            for w in &report.warnings {
                println!("warning: {w}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "disasm" => {
            let in_path = args.positional.first().ok_or("missing input binary")?;
            let binary = load_binary(in_path)?;
            print!("{}", asc::analysis::disassembly(&binary));
            Ok(ExitCode::SUCCESS)
        }
        "run" => {
            let in_path = args.positional.first().ok_or("missing input binary")?;
            let binary = load_binary(in_path)?;
            let enforce = args.flag("enforce") || binary.is_authenticated();
            let opts = if enforce {
                KernelOptions::enforcing(args.personality())
            } else {
                KernelOptions::plain(args.personality())
            };
            let mut kernel = Kernel::new(opts);
            if enforce {
                kernel.set_key(args.key());
            }
            if let Some(stdin_path) = args.value("stdin") {
                let bytes = std::fs::read(stdin_path).map_err(|e| format!("{stdin_path}: {e}"))?;
                kernel.set_stdin(bytes);
            }
            kernel.set_brk(binary.highest_addr());
            let mut machine = Machine::load(&binary, kernel).map_err(|e| e.to_string())?;
            let budget = args
                .value("budget")
                .and_then(|s| s.parse().ok())
                .unwrap_or(1_000_000_000u64);
            let outcome = machine.run(budget);
            let kernel = machine.handler();
            print!("{}", String::from_utf8_lossy(kernel.stdout()));
            eprint!("{}", String::from_utf8_lossy(kernel.stderr()));
            for alert in kernel.alerts() {
                eprintln!("{alert}");
            }
            eprintln!(
                "[{outcome:?}; {} syscalls, {} verified, {} cycles]",
                kernel.stats().syscalls,
                kernel.stats().verified,
                machine.cycles()
            );
            Ok(match outcome {
                asc::vm::RunOutcome::Exited(0) | asc::vm::RunOutcome::Halted => ExitCode::SUCCESS,
                _ => ExitCode::FAILURE,
            })
        }
        _ => Ok(usage()),
    }
}
